
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/broker.cpp" "src/core/CMakeFiles/richnote_core.dir/broker.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/broker.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/richnote_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/lyapunov.cpp" "src/core/CMakeFiles/richnote_core.dir/lyapunov.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/lyapunov.cpp.o.d"
  "/root/repo/src/core/mckp.cpp" "src/core/CMakeFiles/richnote_core.dir/mckp.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/mckp.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/richnote_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/presentation.cpp" "src/core/CMakeFiles/richnote_core.dir/presentation.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/presentation.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/richnote_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/telemetry.cpp" "src/core/CMakeFiles/richnote_core.dir/telemetry.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/telemetry.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/core/CMakeFiles/richnote_core.dir/utility.cpp.o" "gcc" "src/core/CMakeFiles/richnote_core.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/richnote_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/richnote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/richnote_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/richnote_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/richnote_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/richnote_pubsub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

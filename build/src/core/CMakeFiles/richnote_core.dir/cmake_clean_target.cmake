file(REMOVE_RECURSE
  "librichnote_core.a"
)

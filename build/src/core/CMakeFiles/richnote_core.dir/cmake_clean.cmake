file(REMOVE_RECURSE
  "CMakeFiles/richnote_core.dir/broker.cpp.o"
  "CMakeFiles/richnote_core.dir/broker.cpp.o.d"
  "CMakeFiles/richnote_core.dir/experiment.cpp.o"
  "CMakeFiles/richnote_core.dir/experiment.cpp.o.d"
  "CMakeFiles/richnote_core.dir/lyapunov.cpp.o"
  "CMakeFiles/richnote_core.dir/lyapunov.cpp.o.d"
  "CMakeFiles/richnote_core.dir/mckp.cpp.o"
  "CMakeFiles/richnote_core.dir/mckp.cpp.o.d"
  "CMakeFiles/richnote_core.dir/metrics.cpp.o"
  "CMakeFiles/richnote_core.dir/metrics.cpp.o.d"
  "CMakeFiles/richnote_core.dir/presentation.cpp.o"
  "CMakeFiles/richnote_core.dir/presentation.cpp.o.d"
  "CMakeFiles/richnote_core.dir/scheduler.cpp.o"
  "CMakeFiles/richnote_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/richnote_core.dir/telemetry.cpp.o"
  "CMakeFiles/richnote_core.dir/telemetry.cpp.o.d"
  "CMakeFiles/richnote_core.dir/utility.cpp.o"
  "CMakeFiles/richnote_core.dir/utility.cpp.o.d"
  "librichnote_core.a"
  "librichnote_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richnote_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for richnote_core.
# This may be replaced when dependencies are built.

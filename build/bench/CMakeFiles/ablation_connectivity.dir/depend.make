# Empty dependencies file for ablation_connectivity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_connectivity.dir/ablation_connectivity.cpp.o"
  "CMakeFiles/ablation_connectivity.dir/ablation_connectivity.cpp.o.d"
  "ablation_connectivity"
  "ablation_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

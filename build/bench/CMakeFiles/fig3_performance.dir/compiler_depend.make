# Empty compiler generated dependencies file for fig3_performance.
# This may be replaced when dependencies are built.

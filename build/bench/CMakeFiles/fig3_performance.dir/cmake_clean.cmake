file(REMOVE_RECURSE
  "CMakeFiles/fig3_performance.dir/fig3_performance.cpp.o"
  "CMakeFiles/fig3_performance.dir/fig3_performance.cpp.o.d"
  "fig3_performance"
  "fig3_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_lyapunov_v.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_lyapunov_v.dir/ablation_lyapunov_v.cpp.o"
  "CMakeFiles/ablation_lyapunov_v.dir/ablation_lyapunov_v.cpp.o.d"
  "ablation_lyapunov_v"
  "ablation_lyapunov_v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lyapunov_v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

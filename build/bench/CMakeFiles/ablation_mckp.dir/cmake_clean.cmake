file(REMOVE_RECURSE
  "CMakeFiles/ablation_mckp.dir/ablation_mckp.cpp.o"
  "CMakeFiles/ablation_mckp.dir/ablation_mckp.cpp.o.d"
  "ablation_mckp"
  "ablation_mckp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mckp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

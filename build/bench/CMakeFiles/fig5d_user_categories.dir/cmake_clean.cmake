file(REMOVE_RECURSE
  "CMakeFiles/fig5d_user_categories.dir/fig5d_user_categories.cpp.o"
  "CMakeFiles/fig5d_user_categories.dir/fig5d_user_categories.cpp.o.d"
  "fig5d_user_categories"
  "fig5d_user_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_user_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

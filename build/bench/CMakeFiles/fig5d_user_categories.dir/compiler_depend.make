# Empty compiler generated dependencies file for fig5d_user_categories.
# This may be replaced when dependencies are built.

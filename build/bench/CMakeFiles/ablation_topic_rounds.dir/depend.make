# Empty dependencies file for ablation_topic_rounds.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_topic_rounds.dir/ablation_topic_rounds.cpp.o"
  "CMakeFiles/ablation_topic_rounds.dir/ablation_topic_rounds.cpp.o.d"
  "ablation_topic_rounds"
  "ablation_topic_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topic_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig5a_fixed_levels.dir/fig5a_fixed_levels.cpp.o"
  "CMakeFiles/fig5a_fixed_levels.dir/fig5a_fixed_levels.cpp.o.d"
  "fig5a_fixed_levels"
  "fig5a_fixed_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_fixed_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5a_fixed_levels.
# This may be replaced when dependencies are built.

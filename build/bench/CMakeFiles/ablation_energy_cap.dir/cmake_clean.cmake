file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_cap.dir/ablation_energy_cap.cpp.o"
  "CMakeFiles/ablation_energy_cap.dir/ablation_energy_cap.cpp.o.d"
  "ablation_energy_cap"
  "ablation_energy_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_energy_cap.
# This may be replaced when dependencies are built.

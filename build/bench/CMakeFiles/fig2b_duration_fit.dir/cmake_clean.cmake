file(REMOVE_RECURSE
  "CMakeFiles/fig2b_duration_fit.dir/fig2b_duration_fit.cpp.o"
  "CMakeFiles/fig2b_duration_fit.dir/fig2b_duration_fit.cpp.o.d"
  "fig2b_duration_fit"
  "fig2b_duration_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_duration_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2b_duration_fit.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_direct.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_direct.dir/ablation_direct.cpp.o"
  "CMakeFiles/ablation_direct.dir/ablation_direct.cpp.o.d"
  "ablation_direct"
  "ablation_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

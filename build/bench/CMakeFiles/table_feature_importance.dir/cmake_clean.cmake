file(REMOVE_RECURSE
  "CMakeFiles/table_feature_importance.dir/table_feature_importance.cpp.o"
  "CMakeFiles/table_feature_importance.dir/table_feature_importance.cpp.o.d"
  "table_feature_importance"
  "table_feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

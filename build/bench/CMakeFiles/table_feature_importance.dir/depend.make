# Empty dependencies file for table_feature_importance.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_calibration.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_utility_energy.dir/fig4_utility_energy.cpp.o"
  "CMakeFiles/fig4_utility_energy.dir/fig4_utility_energy.cpp.o.d"
  "fig4_utility_energy"
  "fig4_utility_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_utility_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

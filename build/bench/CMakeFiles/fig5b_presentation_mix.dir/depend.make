# Empty dependencies file for fig5b_presentation_mix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5b_presentation_mix.dir/fig5b_presentation_mix.cpp.o"
  "CMakeFiles/fig5b_presentation_mix.dir/fig5b_presentation_mix.cpp.o.d"
  "fig5b_presentation_mix"
  "fig5b_presentation_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_presentation_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

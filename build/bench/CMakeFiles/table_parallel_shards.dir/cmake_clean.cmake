file(REMOVE_RECURSE
  "CMakeFiles/table_parallel_shards.dir/table_parallel_shards.cpp.o"
  "CMakeFiles/table_parallel_shards.dir/table_parallel_shards.cpp.o.d"
  "table_parallel_shards"
  "table_parallel_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_parallel_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table_parallel_shards.
# This may be replaced when dependencies are built.

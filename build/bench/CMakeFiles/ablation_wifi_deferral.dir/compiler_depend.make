# Empty compiler generated dependencies file for ablation_wifi_deferral.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_wifi_deferral.dir/ablation_wifi_deferral.cpp.o"
  "CMakeFiles/ablation_wifi_deferral.dir/ablation_wifi_deferral.cpp.o.d"
  "ablation_wifi_deferral"
  "ablation_wifi_deferral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wifi_deferral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table_classifier.dir/table_classifier.cpp.o"
  "CMakeFiles/table_classifier.dir/table_classifier.cpp.o.d"
  "table_classifier"
  "table_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig_lyapunov_stability.dir/fig_lyapunov_stability.cpp.o"
  "CMakeFiles/fig_lyapunov_stability.dir/fig_lyapunov_stability.cpp.o.d"
  "fig_lyapunov_stability"
  "fig_lyapunov_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_lyapunov_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig_lyapunov_stability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5c_network_adaptation.dir/fig5c_network_adaptation.cpp.o"
  "CMakeFiles/fig5c_network_adaptation.dir/fig5c_network_adaptation.cpp.o.d"
  "fig5c_network_adaptation"
  "fig5c_network_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_network_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig5c_network_adaptation.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_precision_knob.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_precision_knob.dir/ablation_precision_knob.cpp.o"
  "CMakeFiles/ablation_precision_knob.dir/ablation_precision_knob.cpp.o.d"
  "ablation_precision_knob"
  "ablation_precision_knob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precision_knob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

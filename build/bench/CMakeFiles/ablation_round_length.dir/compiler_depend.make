# Empty compiler generated dependencies file for ablation_round_length.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_round_length.dir/ablation_round_length.cpp.o"
  "CMakeFiles/ablation_round_length.dir/ablation_round_length.cpp.o.d"
  "ablation_round_length"
  "ablation_round_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_round_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

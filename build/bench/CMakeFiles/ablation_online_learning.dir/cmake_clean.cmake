file(REMOVE_RECURSE
  "CMakeFiles/ablation_online_learning.dir/ablation_online_learning.cpp.o"
  "CMakeFiles/ablation_online_learning.dir/ablation_online_learning.cpp.o.d"
  "ablation_online_learning"
  "ablation_online_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_online_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig2a_pareto.dir/fig2a_pareto.cpp.o"
  "CMakeFiles/fig2a_pareto.dir/fig2a_pareto.cpp.o.d"
  "fig2a_pareto"
  "fig2a_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig2a_pareto.
# This may be replaced when dependencies are built.

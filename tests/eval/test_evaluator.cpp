// Integration tests for the Monte-Carlo evaluator (DESIGN.md §12): the
// parallel wave evaluator must reproduce, byte for byte, what a
// single-threaded scalar fold over the same replicas produces — for any
// worker count, with and without early stopping — and the scenario packs
// and report writers must hold their documented contracts.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "eval/evaluator.hpp"
#include "eval/report.hpp"
#include "eval/scenario.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_sink.hpp"

namespace {

using richnote::core::experiment_params;
using richnote::core::experiment_setup;
using richnote::core::run_experiment;
using richnote::eval::arm_spec;
using richnote::eval::eval_params;
using richnote::eval::eval_result;
using richnote::eval::make_scenario;
using richnote::eval::metric_index;
using richnote::eval::metric_names;
using richnote::eval::run_evaluation;
using richnote::eval::scenario_names;
using richnote::eval::scenario_pack;
using richnote::eval::scenario_request;
using richnote::eval::welford;
using richnote::eval::write_eval_csv;
using richnote::eval::write_eval_json;

scenario_request small_request() {
    scenario_request req;
    req.users = 12;
    req.setup_seed = 5;
    req.trees = 4;
    req.budget_mb = 3.0;
    return req;
}

/// One shared small world per scenario pack; building the workload + forest
/// dominates test time, the replicas themselves are cheap.
const experiment_setup& shared_setup(const std::string& scenario) {
    // Leaked on purpose (map included) so LeakSanitizer sees the setups as
    // reachable at exit — the same idiom as test_trace_determinism.
    static auto* cache = new std::map<std::string, const experiment_setup*>();
    auto it = cache->find(scenario);
    if (it == cache->end()) {
        const scenario_pack pack = make_scenario(scenario, small_request());
        it = cache->emplace(scenario, new experiment_setup(pack.setup)).first;
    }
    return *it->second;
}

eval_params small_params(const scenario_pack& pack, std::size_t seeds,
                         std::size_t threads) {
    eval_params ep;
    ep.arms = pack.arms;
    ep.seeds = seeds;
    ep.base_seed = 100;
    ep.alpha = 0.05;
    ep.min_samples = 4;
    ep.worker_threads = threads;
    ep.seeds_per_wave = 3;
    return ep;
}

/// Scalar reference: run every (seed, arm) replica sequentially and fold —
/// no pool, no waves, no stopping. What the evaluator must agree with.
std::vector<std::vector<welford>> scalar_reference(const experiment_setup& setup,
                                                   const eval_params& ep) {
    std::vector<std::vector<welford>> acc(ep.arms.size());
    for (auto& a : acc) a.resize(metric_names().size());
    for (std::size_t s = 0; s < ep.seeds; ++s) {
        for (std::size_t k = 0; k < ep.arms.size(); ++k) {
            experiment_params run = ep.arms[k].params;
            run.seed = ep.base_seed + s;
            if (run.faults.any()) run.faults.seed += s;
            run.worker_threads = 1;
            const auto r = run_experiment(setup, run);
            const double values[] = {r.total_utility, r.precision,   r.recall,
                                     r.delivery_ratio, r.delivered_mb, r.metered_mb,
                                     r.energy_kj,      r.mean_delay_min};
            for (std::size_t m = 0; m < metric_names().size(); ++m)
                acc[k][m].add(values[m]);
        }
    }
    return acc;
}

TEST(evaluator, matches_single_threaded_scalar_reference) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 6, 4);
    ep.early_stopping = false; // reference folds every replica
    const eval_result result = run_evaluation(shared_setup("baseline"), ep);
    const auto reference = scalar_reference(shared_setup("baseline"), ep);

    ASSERT_EQ(result.arms.size(), reference.size());
    EXPECT_EQ(result.replicas_executed, ep.seeds * ep.arms.size());
    EXPECT_EQ(result.replicas_used, ep.seeds * ep.arms.size());
    for (std::size_t k = 0; k < reference.size(); ++k) {
        for (std::size_t m = 0; m < metric_names().size(); ++m) {
            const welford& got = result.arms[k].metrics[m];
            const welford& want = reference[k][m];
            ASSERT_EQ(got.count(), want.count());
            // Bit-identical, not merely close: same samples, same fold order.
            EXPECT_EQ(got.mean(), want.mean())
                << pack.arms[k].name << " " << metric_names()[m];
            EXPECT_EQ(got.sample_variance(), want.sample_variance())
                << pack.arms[k].name << " " << metric_names()[m];
            EXPECT_EQ(got.min(), want.min());
            EXPECT_EQ(got.max(), want.max());
        }
    }
}

std::string json_report(const std::string& scenario, std::size_t seeds,
                        std::size_t threads, bool early_stopping) {
    const scenario_pack pack = make_scenario(scenario, small_request());
    eval_params ep = small_params(pack, seeds, threads);
    ep.early_stopping = early_stopping;
    const eval_result result = run_evaluation(shared_setup(scenario), ep);
    std::ostringstream out;
    write_eval_json(result, {scenario}, out);
    return out.str();
}

TEST(evaluator, json_report_is_byte_identical_across_worker_counts) {
    const std::string one = json_report("baseline", 8, 1, true);
    const std::string two = json_report("baseline", 8, 2, true);
    const std::string eight = json_report("baseline", 8, 8, true);
    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

TEST(evaluator, json_report_is_byte_identical_across_reruns) {
    EXPECT_EQ(json_report("baseline", 6, 3, true), json_report("baseline", 6, 3, true));
}

TEST(evaluator, fault_scenario_is_deterministic_across_worker_counts_too) {
    const std::string one = json_report("regional_outage", 6, 1, true);
    const std::string four = json_report("regional_outage", 6, 4, true);
    ASSERT_NE(one.find("regional_outage"), std::string::npos);
    EXPECT_EQ(one, four);
}

TEST(evaluator, early_stopping_retires_a_dominated_arm_before_the_budget) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 24, 4);
    const eval_result result = run_evaluation(shared_setup("baseline"), ep);

    std::size_t retired = 0;
    for (std::size_t k = 0; k < result.arms.size(); ++k) {
        const auto& arm = result.arms[k];
        if (!arm.retired) continue;
        ++retired;
        EXPECT_GE(arm.retired_after, ep.min_samples);
        EXPECT_LT(arm.retired_after, ep.seeds);
        EXPECT_EQ(arm.samples, arm.metrics[0].count());
        EXPECT_LT(arm.samples, ep.seeds);
        EXPECT_NE(arm.retired_by, k);
    }
    ASSERT_GE(retired, 1u) << "no arm was dominated in 24 seeds";
    // The stop must actually have saved replicas.
    EXPECT_LT(result.replicas_used, ep.seeds * ep.arms.size());
    EXPECT_FALSE(result.arms[result.leader].retired);
}

TEST(evaluator, stop_decisions_reach_trace_and_metrics_registry) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 24, 2);
    richnote::obs::trace_sink sink(ep.arms.size());
    richnote::obs::metrics_registry registry;
    ep.trace = &sink;
    ep.registry = &registry;
    const eval_result result = run_evaluation(shared_setup("baseline"), ep);

    std::ostringstream trace;
    sink.write_ndjson(trace);
    const std::string stream = trace.str();
    EXPECT_NE(stream.find("\"type\":\"eval_stop\""), std::string::npos);
    EXPECT_NE(stream.find("\"type\":\"eval_arm\""), std::string::npos);
    EXPECT_NE(stream.find("\"leader\":"), std::string::npos);

    std::size_t retired = 0;
    for (const auto& arm : result.arms) retired += arm.retired ? 1 : 0;
    ASSERT_GE(retired, 1u);
    EXPECT_EQ(registry.counter("richnote.eval.stops_total"),
              static_cast<std::uint64_t>(retired));
    EXPECT_EQ(registry.gauge("richnote.eval.seeds_total"),
              static_cast<double>(ep.seeds));
    EXPECT_EQ(registry.gauge("richnote.eval.arms_active"),
              static_cast<double>(ep.arms.size() - retired));
    for (const auto& arm : result.arms) {
        EXPECT_EQ(registry.gauge("richnote.eval.arm." + arm.name + ".active"),
                  arm.retired ? 0.0 : 1.0);
    }
}

TEST(evaluator, seed_set_hash_depends_on_seed_set_and_arm_count) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 4, 1);
    ep.early_stopping = false;
    const auto a = run_evaluation(shared_setup("baseline"), ep);
    ep.base_seed = 101;
    const auto b = run_evaluation(shared_setup("baseline"), ep);
    EXPECT_NE(a.seed_set_hash, b.seed_set_hash);
    ep.base_seed = 100;
    const auto c = run_evaluation(shared_setup("baseline"), ep);
    EXPECT_EQ(a.seed_set_hash, c.seed_set_hash);
}

TEST(evaluator, rejects_bad_parameters) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 4, 1);
    ep.seeds = 0;
    EXPECT_THROW(run_evaluation(shared_setup("baseline"), ep),
                 richnote::precondition_error);
    ep = small_params(pack, 4, 1);
    ep.arms.clear();
    EXPECT_THROW(run_evaluation(shared_setup("baseline"), ep),
                 richnote::precondition_error);
    EXPECT_THROW(metric_index("not_a_metric"), richnote::precondition_error);
}

// ---------------------------------------------------------------------------
// Scenario packs.

TEST(scenarios, every_named_pack_resolves_with_arms) {
    ASSERT_EQ(scenario_names().size(), 5u);
    for (const auto& name : scenario_names()) {
        const scenario_pack pack = make_scenario(name, small_request());
        EXPECT_EQ(pack.name, name);
        EXPECT_FALSE(pack.description.empty());
        ASSERT_GE(pack.arms.size(), 2u) << name;
        for (const auto& arm : pack.arms) EXPECT_FALSE(arm.name.empty());
    }
}

TEST(scenarios, unknown_name_is_a_named_error) {
    EXPECT_THROW(make_scenario("warp_core_breach", small_request()),
                 richnote::precondition_error);
}

TEST(scenarios, packs_carry_their_distinguishing_knobs) {
    const scenario_request req = small_request();
    const scenario_pack battery = make_scenario("battery_trace", req);
    for (const auto& arm : battery.arms) EXPECT_TRUE(arm.params.battery_traces) << arm.name;
    const scenario_pack outage = make_scenario("regional_outage", req);
    bool has_faults = false;
    for (const auto& arm : outage.arms) has_faults |= arm.params.faults.any();
    EXPECT_TRUE(has_faults);
    const scenario_pack cold = make_scenario("cold_start", req);
    bool has_online = false;
    for (const auto& arm : cold.arms) has_online |= arm.params.online_learning;
    EXPECT_TRUE(has_online);
}

// ---------------------------------------------------------------------------
// Report writers.

TEST(reports, json_schema_and_csv_header_are_stable) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 4, 2);
    ep.early_stopping = false;
    const eval_result result = run_evaluation(shared_setup("baseline"), ep);

    std::ostringstream json;
    write_eval_json(result, {"baseline"}, json);
    const std::string doc = json.str();
    EXPECT_NE(doc.find("\"schema\": \"richnote-eval-v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"scenario\": \"baseline\""), std::string::npos);
    EXPECT_NE(doc.find("\"seed_set_hash\": "), std::string::npos);
    for (const auto& metric : metric_names())
        EXPECT_NE(doc.find("\"" + metric + "\""), std::string::npos);

    std::ostringstream csv;
    write_eval_csv(result, {"baseline"}, csv);
    const std::string flat = csv.str();
    EXPECT_EQ(flat.rfind("scenario,arm,metric,samples,mean,stddev,ci_lo,ci_hi,min,max\n",
                         0),
              0u);
    std::size_t rows = 0;
    for (char c : flat) rows += c == '\n' ? 1 : 0;
    EXPECT_EQ(rows, 1 + result.arms.size() * metric_names().size());
}

TEST(reports, single_sample_confidence_interval_is_null_in_json) {
    const scenario_pack pack = make_scenario("baseline", small_request());
    eval_params ep = small_params(pack, 1, 1);
    ep.early_stopping = false;
    const eval_result result = run_evaluation(shared_setup("baseline"), ep);
    std::ostringstream json;
    write_eval_json(result, {"baseline"}, json);
    EXPECT_NE(json.str().find("\"ci_lo\":null"), std::string::npos);
}

} // namespace

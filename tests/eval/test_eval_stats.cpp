// Property tests for the evaluation statistics core (DESIGN.md §12):
// the Welford accumulator against a two-pass scalar reference on many
// seeded streams, the Student-t quantile against table values, and the
// sequential stopping rule against an oracle on synthetic Gaussian arms —
// at alpha = 0.01 the true-best arm must never be retired, while clearly
// dominated arms must retire well before the sample budget.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "eval/stats.hpp"

namespace {

using richnote::eval::confidence_interval;
using richnote::eval::fnv1a64;
using richnote::eval::hex64;
using richnote::eval::incomplete_beta;
using richnote::eval::sequential_stopper;
using richnote::eval::t_cdf;
using richnote::eval::t_interval;
using richnote::eval::t_quantile;
using richnote::eval::welford;

/// Two-pass scalar reference: exact textbook mean and sample variance.
struct scalar_reference {
    double mean = 0.0;
    double sample_variance = 0.0;
    double min = 0.0;
    double max = 0.0;
};

scalar_reference reference_moments(const std::vector<double>& xs) {
    scalar_reference ref;
    if (xs.empty()) return ref;
    double sum = 0.0;
    ref.min = ref.max = xs.front();
    for (double x : xs) {
        sum += x;
        ref.min = std::min(ref.min, x);
        ref.max = std::max(ref.max, x);
    }
    ref.mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2) return ref;
    double ss = 0.0;
    for (double x : xs) ss += (x - ref.mean) * (x - ref.mean);
    ref.sample_variance = ss / static_cast<double>(xs.size() - 1);
    return ref;
}

TEST(welford_accumulator, matches_scalar_reference_on_200_seeded_streams) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        richnote::rng gen(seed * 977 + 11);
        const std::size_t n = 2 + static_cast<std::size_t>(gen.uniform(0, 400));
        std::vector<double> xs;
        xs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Mix of scales and signs, including an offset that stresses
            // catastrophic cancellation in naive sum-of-squares formulas.
            const double offset = (seed % 3 == 0) ? 1e6 : 0.0;
            xs.push_back(offset + gen.normal(5.0, 40.0) * gen.uniform(0.1, 3.0));
        }
        welford acc;
        for (double x : xs) acc.add(x);
        const scalar_reference ref = reference_moments(xs);
        ASSERT_EQ(acc.count(), xs.size());
        const double scale = std::max(1.0, std::fabs(ref.mean));
        EXPECT_NEAR(acc.mean(), ref.mean, 1e-9 * scale) << "seed " << seed;
        EXPECT_NEAR(acc.sample_variance(), ref.sample_variance,
                    1e-6 * std::max(1.0, ref.sample_variance))
            << "seed " << seed;
        EXPECT_DOUBLE_EQ(acc.min(), ref.min);
        EXPECT_DOUBLE_EQ(acc.max(), ref.max);
        EXPECT_NEAR(acc.standard_error(),
                    std::sqrt(ref.sample_variance / static_cast<double>(n)),
                    1e-6 * std::max(1.0, std::sqrt(ref.sample_variance)));
    }
}

TEST(welford_accumulator, degenerate_counts) {
    welford acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.sample_variance(), 0.0);
    acc.add(42.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_EQ(acc.mean(), 42.0);
    EXPECT_EQ(acc.sample_variance(), 0.0);
    EXPECT_EQ(acc.standard_error(), 0.0);
    EXPECT_EQ(acc.min(), 42.0);
    EXPECT_EQ(acc.max(), 42.0);
}

TEST(t_distribution, quantile_matches_table_values) {
    // Standard two-sided 95% critical values (p = 0.975).
    EXPECT_NEAR(t_quantile(0.975, 1), 12.7062, 1e-3);
    EXPECT_NEAR(t_quantile(0.975, 2), 4.3027, 1e-3);
    EXPECT_NEAR(t_quantile(0.975, 10), 2.2281, 1e-3);
    EXPECT_NEAR(t_quantile(0.975, 30), 2.0423, 1e-3);
    // 99% two-sided (p = 0.995) for the oracle alpha.
    EXPECT_NEAR(t_quantile(0.995, 7), 3.4995, 1e-3);
    // Large df converges to the normal quantile.
    EXPECT_NEAR(t_quantile(0.975, 1e6), 1.9600, 1e-3);
    // Symmetry and median.
    EXPECT_NEAR(t_quantile(0.025, 10), -t_quantile(0.975, 10), 1e-9);
    EXPECT_NEAR(t_quantile(0.5, 5), 0.0, 1e-9);
}

TEST(t_distribution, cdf_quantile_roundtrip) {
    for (double df : {1.0, 3.0, 9.0, 31.0, 200.0}) {
        for (double p : {0.01, 0.1, 0.5, 0.9, 0.975, 0.999}) {
            EXPECT_NEAR(t_cdf(t_quantile(p, df), df), p, 1e-8)
                << "df " << df << " p " << p;
        }
    }
}

TEST(t_distribution, incomplete_beta_boundaries) {
    EXPECT_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    // I_{1/2}(a, a) = 1/2 by symmetry.
    EXPECT_NEAR(incomplete_beta(4.0, 4.0, 0.5), 0.5, 1e-10);
    // I_x(1, b) = 1 - (1-x)^b in closed form.
    EXPECT_NEAR(incomplete_beta(1.0, 3.0, 0.25), 1.0 - std::pow(0.75, 3.0), 1e-10);
}

TEST(t_distribution, interval_is_mean_plus_minus_t_times_se) {
    welford acc;
    for (double x : {3.0, 5.0, 4.0, 6.0, 2.0, 4.5, 3.5, 5.5}) acc.add(x);
    const confidence_interval ci = t_interval(acc, 0.05);
    const double t = t_quantile(0.975, static_cast<double>(acc.count() - 1));
    EXPECT_NEAR(ci.half_width, t * acc.standard_error(), 1e-12);
    EXPECT_NEAR(ci.lo, acc.mean() - ci.half_width, 1e-12);
    EXPECT_NEAR(ci.hi, acc.mean() + ci.half_width, 1e-12);
}

TEST(t_distribution, interval_is_infinite_below_two_samples) {
    welford acc;
    acc.add(1.0);
    const confidence_interval ci = t_interval(acc, 0.05);
    EXPECT_TRUE(std::isinf(ci.half_width));
    EXPECT_EQ(ci.lo, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(ci.hi, std::numeric_limits<double>::infinity());
}

// ---------------------------------------------------------------------------
// Sequential stopping rule.

TEST(sequential_stopper, respects_min_samples_floor) {
    sequential_stopper stopper(2, {0.05, 5, true});
    // Wildly separated arms, but below the floor nothing may retire.
    for (std::size_t s = 0; s < 4; ++s) {
        stopper.observe(0, 100.0 + static_cast<double>(s));
        stopper.observe(1, 1.0 + static_cast<double>(s));
        EXPECT_TRUE(stopper.check().empty()) << "retired below floor at seed " << s;
    }
    stopper.observe(0, 104.0);
    stopper.observe(1, 5.0);
    const auto decisions = stopper.check();
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].arm, 1u);
    EXPECT_EQ(decisions[0].leader, 0u);
    EXPECT_EQ(decisions[0].samples, 5u);
    EXPECT_FALSE(stopper.active(1));
    EXPECT_TRUE(stopper.active(0));
    EXPECT_EQ(stopper.active_count(), 1u);
    EXPECT_EQ(stopper.leader(), 0u);
}

TEST(sequential_stopper, observing_a_retired_arm_throws) {
    sequential_stopper stopper(2, {0.05, 2, true});
    for (std::size_t s = 0; s < 3 && stopper.active(1); ++s) {
        stopper.observe(0, 50.0 + static_cast<double>(s));
        stopper.observe(1, static_cast<double>(s));
        stopper.check();
    }
    ASSERT_FALSE(stopper.active(1));
    EXPECT_THROW(stopper.observe(1, 1.0), richnote::precondition_error);
}

TEST(sequential_stopper, minimize_direction_retires_the_high_arm) {
    sequential_stopper stopper(2, {0.05, 3, false});
    for (std::size_t s = 0; s < 4 && stopper.active(1); ++s) {
        stopper.observe(0, 10.0 + 0.1 * static_cast<double>(s)); // low = good
        stopper.observe(1, 90.0 + 0.1 * static_cast<double>(s));
        stopper.check();
    }
    EXPECT_TRUE(stopper.active(0));
    EXPECT_FALSE(stopper.active(1));
    EXPECT_EQ(stopper.leader(), 0u);
}

TEST(sequential_stopper, several_arms_can_retire_on_the_same_seed) {
    sequential_stopper stopper(4, {0.05, 3, true});
    for (std::size_t s = 0; s < 3; ++s) {
        const double jitter = 0.05 * static_cast<double>(s);
        stopper.observe(0, 100.0 + jitter);
        stopper.observe(1, 1.0 + jitter);
        stopper.observe(2, 2.0 + jitter);
        stopper.observe(3, 99.9 + jitter);
    }
    const auto decisions = stopper.check();
    ASSERT_EQ(decisions.size(), 2u);
    EXPECT_EQ(decisions[0].arm, 1u);
    EXPECT_EQ(decisions[1].arm, 2u);
    EXPECT_TRUE(stopper.active(0));
    EXPECT_TRUE(stopper.active(3)); // overlapping CI with the leader survives
    EXPECT_EQ(stopper.active_count(), 2u);
}

// Oracle: at alpha = 0.01, across 200 independent trials on synthetic
// Gaussian arms with a clear gap, the true-best arm is never retired —
// and the clearly dominated arm almost always is, well inside the budget.
TEST(sequential_stopper, oracle_never_retires_true_best_at_alpha_001) {
    constexpr std::size_t trials = 200;
    constexpr std::size_t max_samples = 64;
    const std::vector<double> true_means = {10.0, 8.0, 5.0}; // arm 0 is best
    std::size_t worst_arm_retirements = 0;
    std::size_t worst_arm_samples_total = 0;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
        richnote::rng gen(0xe5a1u + trial);
        sequential_stopper stopper(true_means.size(), {0.01, 8, true});
        for (std::size_t s = 0; s < max_samples && stopper.active_count() > 1; ++s) {
            for (std::size_t k = 0; k < true_means.size(); ++k) {
                if (stopper.active(k)) stopper.observe(k, gen.normal(true_means[k], 1.0));
            }
            stopper.check();
        }
        ASSERT_TRUE(stopper.active(0)) << "true best retired in trial " << trial;
        if (!stopper.active(2)) {
            ++worst_arm_retirements;
            worst_arm_samples_total += stopper.accumulator(2).count();
        }
    }
    // Power: the mean-5 arm (5 sigma below the best) must essentially always
    // retire, and on average right around the min-samples floor.
    EXPECT_GE(worst_arm_retirements, trials * 95 / 100);
    EXPECT_LT(static_cast<double>(worst_arm_samples_total) /
                  static_cast<double>(worst_arm_retirements),
              16.0);
}

// ---------------------------------------------------------------------------
// Seed-set hash.

TEST(seed_set_hash, fnv1a64_reference_values) {
    // Offset basis for the empty input is the FNV-1a standard constant.
    EXPECT_EQ(fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
    const std::uint64_t one[] = {0};
    const std::uint64_t also_one[] = {0};
    EXPECT_EQ(fnv1a64(one, 1), fnv1a64(also_one, 1));
    const std::uint64_t other[] = {1};
    EXPECT_NE(fnv1a64(one, 1), fnv1a64(other, 1));
    // Order matters: hashing is positional, not a set digest.
    const std::uint64_t ab[] = {7, 9};
    const std::uint64_t ba[] = {9, 7};
    EXPECT_NE(fnv1a64(ab, 2), fnv1a64(ba, 2));
}

TEST(seed_set_hash, hex64_is_fixed_width_lowercase) {
    EXPECT_EQ(hex64(0), "0000000000000000");
    EXPECT_EQ(hex64(0xdeadbeefULL), "00000000deadbeef");
    EXPECT_EQ(hex64(0xcbf29ce484222325ULL), "cbf29ce484222325");
}

} // namespace

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace {

using richnote::sim::simulator;
namespace t = richnote::sim;

TEST(simulator, clock_advances_with_events) {
    simulator sim;
    std::vector<double> times;
    sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
    sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
    sim.run();
    EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(simulator, schedule_in_is_relative_to_now) {
    simulator sim;
    double fired_at = -1;
    sim.schedule_at(5.0, [&] {
        sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(simulator, run_until_stops_at_deadline_and_advances_clock) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(1.0, [&] { ++fired; });
    sim.schedule_at(10.0, [&] { ++fired; });
    const auto executed = sim.run_until(5.0);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(simulator, events_exactly_at_deadline_fire) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(5.0, [&] { ++fired; });
    sim.run_until(5.0);
    EXPECT_EQ(fired, 1);
}

TEST(simulator, rejects_scheduling_in_the_past) {
    simulator sim;
    sim.schedule_at(3.0, [] {});
    sim.run();
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), richnote::precondition_error);
    EXPECT_THROW(sim.schedule_in(-1.0, [] {}), richnote::precondition_error);
    EXPECT_THROW(sim.run_until(1.0), richnote::precondition_error);
}

TEST(simulator, periodic_fires_with_tick_indices) {
    simulator sim;
    std::vector<std::uint64_t> ticks;
    std::vector<double> times;
    sim.schedule_periodic(1.0, 2.0, [&](std::uint64_t tick) {
        ticks.push_back(tick);
        times.push_back(sim.now());
        if (tick == 3) sim.stop();
    });
    sim.run();
    EXPECT_EQ(ticks, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(simulator, cancel_periodic_stops_the_series) {
    simulator sim;
    int fired = 0;
    const auto series = sim.schedule_periodic(0.0, 1.0, [&](std::uint64_t) { ++fired; });
    sim.schedule_at(2.5, [&] { sim.cancel_periodic(series); });
    sim.run_until(10.0);
    EXPECT_EQ(fired, 3); // t = 0, 1, 2
    EXPECT_TRUE(sim.idle());
}

TEST(simulator, periodic_callback_can_cancel_its_own_series) {
    simulator sim;
    std::uint64_t series = 0;
    int fired = 0;
    series = sim.schedule_periodic(0.0, 1.0, [&](std::uint64_t tick) {
        ++fired;
        if (tick == 1) sim.cancel_periodic(series);
    });
    sim.run_until(10.0);
    EXPECT_EQ(fired, 2);
}

TEST(simulator, cancel_of_single_events_works) {
    simulator sim;
    bool fired = false;
    const auto h = sim.schedule_at(1.0, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(h));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(simulator, periodic_rejects_bad_parameters) {
    simulator sim;
    EXPECT_THROW(sim.schedule_periodic(0.0, 0.0, [](std::uint64_t) {}),
                 richnote::precondition_error);
    EXPECT_THROW(sim.schedule_periodic(0.0, 1.0, nullptr), richnote::precondition_error);
}

TEST(time_helpers, hour_of_day_wraps) {
    EXPECT_DOUBLE_EQ(t::hour_of_day(0.0), 0.0);
    EXPECT_DOUBLE_EQ(t::hour_of_day(3.0 * t::hours), 3.0);
    EXPECT_DOUBLE_EQ(t::hour_of_day(27.0 * t::hours), 3.0);
}

TEST(time_helpers, weekend_starts_on_day_five) {
    EXPECT_FALSE(t::is_weekend(0.0));              // Monday
    EXPECT_FALSE(t::is_weekend(4.0 * t::days));    // Friday
    EXPECT_TRUE(t::is_weekend(5.0 * t::days));     // Saturday
    EXPECT_TRUE(t::is_weekend(6.5 * t::days));     // Sunday
    EXPECT_FALSE(t::is_weekend(7.0 * t::days));    // next Monday
}

TEST(time_helpers, daytime_window) {
    EXPECT_FALSE(t::is_daytime(7.0 * t::hours));
    EXPECT_TRUE(t::is_daytime(8.0 * t::hours));
    EXPECT_TRUE(t::is_daytime(21.9 * t::hours));
    EXPECT_FALSE(t::is_daytime(22.0 * t::hours));
}

} // namespace

#include "sim/battery.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/time.hpp"

namespace {

using richnote::rng;
using richnote::sim::battery_model;
using richnote::sim::battery_params;
using richnote::sim::energy_budget_policy;
namespace t = richnote::sim;

battery_params no_jitter_params() {
    battery_params p;
    p.phase_jitter_hours = 0.0;
    return p;
}

TEST(battery, starts_at_initial_level) {
    rng gen(1);
    battery_model b(no_jitter_params(), gen);
    EXPECT_DOUBLE_EQ(b.level(), 0.9);
}

TEST(battery, drains_during_the_day) {
    rng gen(1);
    battery_model b(no_jitter_params(), gen);
    const double before = b.level();
    b.step(12.0 * t::hours, t::hours, 0.0); // noon, not charging
    EXPECT_LT(b.level(), before);
    EXPECT_FALSE(b.charging());
}

TEST(battery, daytime_drain_exceeds_night_drain) {
    rng gen(1);
    battery_model day(no_jitter_params(), gen);
    battery_model night(no_jitter_params(), gen);
    day.step(12.0 * t::hours, t::hours, 0.0);
    // 20:00 is outside the charge window (23:00–07:00) but night drain
    // applies only outside 08:00–22:00; use 22:30.
    night.step(22.5 * t::hours, t::hours, 0.0);
    EXPECT_LT(day.level(), night.level());
}

TEST(battery, charges_overnight) {
    rng gen(1);
    battery_params p = no_jitter_params();
    p.initial_level = 0.2;
    battery_model b(p, gen);
    b.step(23.5 * t::hours, t::hours, 0.0); // inside the 23:00–07:00 window
    EXPECT_TRUE(b.charging());
    EXPECT_GT(b.level(), 0.2);
}

TEST(battery, charge_window_wraps_midnight) {
    rng gen(1);
    battery_params p = no_jitter_params();
    p.initial_level = 0.1;
    battery_model b(p, gen);
    b.step(2.0 * t::hours, t::hours, 0.0); // 02:00, still in the window
    EXPECT_TRUE(b.charging());
}

TEST(battery, level_clamps_to_unit_interval) {
    rng gen(1);
    battery_params p = no_jitter_params();
    p.initial_level = 0.99;
    battery_model full(p, gen);
    for (int h = 0; h < 8; ++h) full.step((23.0 + h) * t::hours, t::hours, 0.0);
    EXPECT_LE(full.level(), 1.0);

    p.initial_level = 0.01;
    battery_model empty(p, gen);
    for (int h = 0; h < 12; ++h) empty.step((8.0 + h) * t::hours, t::hours, 5000.0);
    EXPECT_GE(empty.level(), 0.0);
}

TEST(battery, extra_drain_reduces_level) {
    rng gen(1);
    battery_model a(no_jitter_params(), gen);
    battery_model b2(no_jitter_params(), gen);
    a.step(12.0 * t::hours, t::hours, 0.0);
    b2.step(12.0 * t::hours, t::hours, 1000.0);
    EXPECT_GT(a.level(), b2.level());
}

TEST(battery, direct_drain_is_clamped) {
    rng gen(1);
    battery_model b(no_jitter_params(), gen);
    b.drain(1e9);
    EXPECT_DOUBLE_EQ(b.level(), 0.0);
}

TEST(battery, rejects_invalid_params) {
    rng gen(1);
    battery_params bad = no_jitter_params();
    bad.capacity_joules = 0.0;
    EXPECT_THROW(battery_model(bad, gen), richnote::precondition_error);
    bad = no_jitter_params();
    bad.initial_level = 1.5;
    EXPECT_THROW(battery_model(bad, gen), richnote::precondition_error);
}

TEST(energy_policy, full_kappa_when_charging_or_comfortable) {
    rng gen(1);
    energy_budget_policy policy;
    battery_params p = no_jitter_params();
    p.initial_level = 0.9;
    battery_model b(p, gen);
    EXPECT_DOUBLE_EQ(policy.replenishment(b), policy.kappa_joules_per_round);
}

TEST(energy_policy, zero_below_cutoff) {
    rng gen(1);
    energy_budget_policy policy;
    battery_params p = no_jitter_params();
    p.initial_level = 0.05;
    battery_model b(p, gen);
    b.step(12.0 * t::hours, 0.0, 0.0); // refresh charging flag at noon
    EXPECT_DOUBLE_EQ(policy.replenishment(b), 0.0);
}

TEST(energy_policy, linear_taper_between_cutoff_and_full) {
    rng gen(1);
    energy_budget_policy policy; // cutoff 0.1, full 0.5, kappa 3000
    battery_params p = no_jitter_params();
    p.initial_level = 0.3; // midpoint of the taper
    battery_model b(p, gen);
    b.step(12.0 * t::hours, 0.0, 0.0);
    EXPECT_NEAR(policy.replenishment(b), 1500.0, 1e-9);
}

} // namespace

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace {

using richnote::sim::event_handle;
using richnote::sim::event_queue;

TEST(event_queue, pops_in_time_order) {
    event_queue q;
    std::vector<int> fired;
    q.schedule(3.0, [&] { fired.push_back(3); });
    q.schedule(1.0, [&] { fired.push_back(1); });
    q.schedule(2.0, [&] { fired.push_back(2); });
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(event_queue, equal_times_fire_in_scheduling_order) {
    event_queue q;
    std::vector<int> fired;
    for (int i = 0; i < 10; ++i) q.schedule(5.0, [&fired, i] { fired.push_back(i); });
    while (!q.empty()) q.pop().second();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(event_queue, pop_returns_event_time) {
    event_queue q;
    q.schedule(7.5, [] {});
    EXPECT_DOUBLE_EQ(q.next_time(), 7.5);
    const auto [when, fn] = q.pop();
    EXPECT_DOUBLE_EQ(when, 7.5);
    EXPECT_TRUE(fn != nullptr);
}

TEST(event_queue, cancel_removes_pending_event) {
    event_queue q;
    bool fired = false;
    const event_handle h = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.pending(h));
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.pending(h));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(event_queue, cancel_is_idempotent_and_safe_on_stale_handles) {
    event_queue q;
    const event_handle h = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h));
    EXPECT_FALSE(q.cancel(event_handle{}));

    // Slot reuse must invalidate the old handle via the generation counter.
    const event_handle h2 = q.schedule(2.0, [] {});
    EXPECT_FALSE(q.pending(h));
    EXPECT_TRUE(q.pending(h2));
    EXPECT_FALSE(q.cancel(h));
}

TEST(event_queue, fired_event_handle_is_stale) {
    event_queue q;
    const event_handle h = q.schedule(1.0, [] {});
    q.pop().second();
    EXPECT_FALSE(q.pending(h));
    EXPECT_FALSE(q.cancel(h));
}

TEST(event_queue, slot_reuse_keeps_ordering) {
    event_queue q;
    std::vector<int> fired;
    const auto h = q.schedule(1.0, [&] { fired.push_back(-1); });
    q.cancel(h);
    q.schedule(2.0, [&] { fired.push_back(2); });
    q.schedule(1.5, [&] { fired.push_back(1); });
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(event_queue, clear_empties_everything) {
    event_queue q;
    for (int i = 0; i < 5; ++i) q.schedule(i, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    q.schedule(1.0, [] {});
    EXPECT_EQ(q.size(), 1u);
}

TEST(event_queue, rejects_null_callbacks_and_empty_pops) {
    event_queue q;
    EXPECT_THROW(q.schedule(1.0, nullptr), richnote::precondition_error);
    EXPECT_THROW(q.pop(), richnote::precondition_error);
    EXPECT_THROW(q.next_time(), richnote::precondition_error);
}

} // namespace

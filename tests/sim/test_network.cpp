#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::sim::default_link_profile;
using richnote::sim::markov_network_model;
using richnote::sim::net_state;
using richnote::sim::net_transition_matrix;

TEST(network, state_names) {
    EXPECT_STREQ(to_string(net_state::off), "OFF");
    EXPECT_STREQ(to_string(net_state::cell), "CELL");
    EXPECT_STREQ(to_string(net_state::wifi), "WIFI");
}

TEST(network, rejects_non_stochastic_matrices) {
    net_transition_matrix bad{{{{0.5, 0.5, 0.5}}, {{1, 0, 0}}, {{1, 0, 0}}}};
    EXPECT_THROW(markov_network_model(bad, net_state::off), richnote::precondition_error);
    net_transition_matrix negative{{{{-0.5, 1.5, 0}}, {{1, 0, 0}}, {{1, 0, 0}}}};
    EXPECT_THROW(markov_network_model(negative, net_state::off),
                 richnote::precondition_error);
}

TEST(network, fixed_model_never_transitions) {
    auto m = markov_network_model::fixed(net_state::cell);
    rng gen(1);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(m.step(gen), net_state::cell);
}

TEST(network, cellular_only_never_reaches_wifi) {
    auto m = markov_network_model::cellular_only();
    rng gen(2);
    for (int i = 0; i < 10000; ++i) EXPECT_NE(m.step(gen), net_state::wifi);
}

TEST(network, cellular_only_rejects_wifi_start) {
    EXPECT_THROW(markov_network_model::cellular_only(net_state::wifi),
                 richnote::precondition_error);
}

TEST(network, cellular_only_is_half_connected_on_average) {
    auto m = markov_network_model::cellular_only();
    rng gen(3);
    int connected = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (m.step(gen) == net_state::cell) ++connected;
    EXPECT_NEAR(static_cast<double>(connected) / n, 0.5, 0.01);
}

TEST(network, with_wifi_matches_paper_transition_structure) {
    auto m = markov_network_model::with_wifi();
    const auto& matrix = m.matrix();
    // 50% self-transition everywhere.
    for (std::size_t s = 0; s < 3; ++s) EXPECT_DOUBLE_EQ(matrix[s][s], 0.5);
    // From OFF: equal probability of cell and wifi.
    EXPECT_DOUBLE_EQ(matrix[0][1], 0.25);
    EXPECT_DOUBLE_EQ(matrix[0][2], 0.25);
}

TEST(network, with_wifi_visits_all_states) {
    auto m = markov_network_model::with_wifi();
    rng gen(4);
    std::array<int, 3> counts{};
    const int n = 60000;
    for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(m.step(gen))];
    for (int c : counts) EXPECT_GT(c, n / 10);
}

TEST(network, empirical_frequencies_match_stationary_distribution) {
    auto m = markov_network_model::with_wifi();
    const auto pi = m.stationary();
    double total = 0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);

    auto runner = markov_network_model::with_wifi();
    rng gen(5);
    std::array<double, 3> counts{};
    const int n = 200000;
    for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(runner.step(gen))] += 1.0;
    for (std::size_t s = 0; s < 3; ++s) EXPECT_NEAR(counts[s] / n, pi[s], 0.01);
}

TEST(network, symmetric_chain_has_uniform_stationary) {
    auto m = markov_network_model::with_wifi();
    const auto pi = m.stationary();
    // The paper's matrix is doubly stochastic, so the stationary
    // distribution is uniform over the three states.
    for (double p : pi) EXPECT_NEAR(p, 1.0 / 3.0, 1e-9);
}

TEST(network, coverage_model_hits_requested_stationary_fraction) {
    for (double coverage : {0.2, 0.5, 0.8}) {
        auto m = markov_network_model::cellular_with_coverage(coverage);
        rng gen(7);
        int connected = 0;
        const int n = 100000;
        for (int i = 0; i < n; ++i)
            if (m.step(gen) == net_state::cell) ++connected;
        EXPECT_NEAR(static_cast<double>(connected) / n, coverage, 0.01)
            << "coverage " << coverage;
    }
}

TEST(network, coverage_half_matches_cellular_only_stationary) {
    const auto a = markov_network_model::cellular_with_coverage(0.5).stationary();
    const auto b = markov_network_model::cellular_only().stationary();
    for (std::size_t s = 0; s < 3; ++s) EXPECT_NEAR(a[s], b[s], 1e-9);
}

TEST(network, coverage_extremes_pin_the_state) {
    auto never = markov_network_model::cellular_with_coverage(0.0);
    auto always = markov_network_model::cellular_with_coverage(1.0);
    rng gen(9);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(never.step(gen), net_state::off);
        EXPECT_EQ(always.step(gen), net_state::cell);
    }
}

TEST(network, coverage_model_rejects_bad_arguments) {
    EXPECT_THROW(markov_network_model::cellular_with_coverage(-0.1),
                 richnote::precondition_error);
    EXPECT_THROW(markov_network_model::cellular_with_coverage(1.1),
                 richnote::precondition_error);
    EXPECT_THROW(markov_network_model::cellular_with_coverage(0.5, net_state::wifi),
                 richnote::precondition_error);
}

TEST(link_profile, off_carries_nothing) {
    const auto p = default_link_profile(net_state::off);
    EXPECT_FALSE(p.connected);
    EXPECT_DOUBLE_EQ(p.bytes_per_second, 0.0);
}

TEST(link_profile, wifi_is_unmetered_and_faster_than_cell) {
    const auto cell = default_link_profile(net_state::cell);
    const auto wifi = default_link_profile(net_state::wifi);
    EXPECT_TRUE(cell.connected);
    EXPECT_TRUE(cell.metered);
    EXPECT_TRUE(wifi.connected);
    EXPECT_FALSE(wifi.metered);
    EXPECT_GT(wifi.bytes_per_second, cell.bytes_per_second);
}

} // namespace

#include "sim/battery_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::sim::battery_model;
using richnote::sim::battery_params;
using richnote::sim::battery_sample;
using richnote::sim::battery_trace;
using richnote::sim::traced_battery;
namespace t = richnote::sim;

battery_trace small_trace() {
    return battery_trace({{0.0, 0.9, false}, {100.0, 0.8, false}, {200.0, 0.95, true}});
}

TEST(battery_trace_test, lookup_is_a_right_continuous_step_function) {
    const auto trace = small_trace();
    EXPECT_DOUBLE_EQ(trace.level_at(-10.0), 0.9); // before first sample
    EXPECT_DOUBLE_EQ(trace.level_at(0.0), 0.9);
    EXPECT_DOUBLE_EQ(trace.level_at(99.9), 0.9);
    EXPECT_DOUBLE_EQ(trace.level_at(100.0), 0.8);
    EXPECT_DOUBLE_EQ(trace.level_at(150.0), 0.8);
    EXPECT_DOUBLE_EQ(trace.level_at(1e9), 0.95); // after last sample
    EXPECT_FALSE(trace.charging_at(150.0));
    EXPECT_TRUE(trace.charging_at(250.0));
}

TEST(battery_trace_test, rejects_malformed_traces) {
    EXPECT_THROW(battery_trace({}), richnote::precondition_error);
    EXPECT_THROW(battery_trace({{0.0, 1.5, false}}), richnote::precondition_error);
    EXPECT_THROW(battery_trace({{100.0, 0.5, false}, {50.0, 0.5, false}}),
                 richnote::precondition_error);
}

TEST(battery_trace_test, csv_round_trip) {
    const auto original = small_trace();
    std::stringstream buffer;
    original.write_csv(buffer);
    const auto loaded = battery_trace::read_csv(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_DOUBLE_EQ(loaded.samples()[i].at, original.samples()[i].at);
        EXPECT_DOUBLE_EQ(loaded.samples()[i].level, original.samples()[i].level);
        EXPECT_EQ(loaded.samples()[i].charging, original.samples()[i].charging);
    }
}

TEST(battery_trace_test, csv_rejects_garbage) {
    std::stringstream wrong_header("time,lvl\n");
    EXPECT_THROW(battery_trace::read_csv(wrong_header), richnote::precondition_error);
    std::stringstream bad_row("at,level,charging\n1,notanumber,0\n");
    EXPECT_THROW(battery_trace::read_csv(bad_row), richnote::precondition_error);
    std::stringstream bad_flag("at,level,charging\n1,0.5,7\n");
    EXPECT_THROW(battery_trace::read_csv(bad_flag), richnote::precondition_error);
}

TEST(battery_trace_test, synthesize_matches_a_model_run) {
    battery_params params;
    params.phase_jitter_hours = 0.0;
    rng trace_gen(5);
    const auto trace =
        battery_trace::synthesize(params, 24.0 * t::hours, t::hours, trace_gen);
    EXPECT_EQ(trace.size(), 25u);

    rng model_gen(5);
    battery_model model(params, model_gen);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const double at = static_cast<double>(i) * t::hours;
        model.step(at, t::hours, 0.0);
        EXPECT_DOUBLE_EQ(trace.samples()[i].level, model.level());
        EXPECT_EQ(trace.samples()[i].charging, model.charging());
    }
}

TEST(traced_battery_test, replays_the_trace_as_time_advances) {
    traced_battery battery(small_trace());
    EXPECT_DOUBLE_EQ(battery.level(), 0.9); // t = 0
    battery.step(0.0, 100.0, 0.0);          // now = 100
    EXPECT_DOUBLE_EQ(battery.level(), 0.8);
    battery.step(100.0, 100.0, 0.0); // now = 200
    EXPECT_DOUBLE_EQ(battery.level(), 0.95);
    EXPECT_TRUE(battery.charging());
}

TEST(traced_battery_test, drain_and_load_are_ignored) {
    traced_battery battery(small_trace());
    battery.drain(1e9);
    EXPECT_DOUBLE_EQ(battery.level(), 0.9);
    battery.step(0.0, 50.0, 1e9);
    EXPECT_DOUBLE_EQ(battery.level(), 0.9); // still inside the first sample
}

TEST(traced_battery_test, works_as_a_battery_source_for_the_policy) {
    const t::energy_budget_policy policy;
    traced_battery healthy(battery_trace({{0.0, 0.9, false}}));
    EXPECT_DOUBLE_EQ(policy.replenishment(healthy), policy.kappa_joules_per_round);
    traced_battery dying(battery_trace({{0.0, 0.05, false}}));
    EXPECT_DOUBLE_EQ(policy.replenishment(dying), 0.0);
}

TEST(battery_trace_test, file_round_trip_and_missing_file) {
    const std::string path = ::testing::TempDir() + "richnote_battery_trace.csv";
    small_trace().save(path);
    const auto loaded = battery_trace::load(path);
    EXPECT_EQ(loaded.size(), 3u);
    std::remove(path.c_str());
    EXPECT_THROW(battery_trace::load("/nonexistent/battery.csv"),
                 richnote::precondition_error);
}

} // namespace

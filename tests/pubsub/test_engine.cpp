#include "pubsub/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::pubsub::artist_topic;
using richnote::pubsub::engine;
using richnote::pubsub::playlist_topic;
using richnote::pubsub::publication;
using richnote::pubsub::topic_id;
using richnote::pubsub::topic_kind;
using richnote::pubsub::user_feed_topic;

TEST(topics, kinds_do_not_collide) {
    // Same key, different kinds: distinct topics.
    EXPECT_NE(user_feed_topic(7), artist_topic(7));
    EXPECT_NE(artist_topic(7), playlist_topic(7));
    EXPECT_EQ(user_feed_topic(7), user_feed_topic(7));
}

TEST(topics, kind_names) {
    EXPECT_STREQ(to_string(topic_kind::user_feed), "user_feed");
    EXPECT_STREQ(to_string(topic_kind::artist), "artist");
    EXPECT_STREQ(to_string(topic_kind::playlist), "playlist");
}

TEST(engine_test, subscribe_and_query) {
    engine e;
    EXPECT_TRUE(e.subscribe(1, artist_topic(5), 0.8));
    EXPECT_TRUE(e.is_subscribed(1, artist_topic(5)));
    EXPECT_DOUBLE_EQ(e.affinity(1, artist_topic(5)), 0.8);
    EXPECT_FALSE(e.is_subscribed(2, artist_topic(5)));
    EXPECT_DOUBLE_EQ(e.affinity(1, artist_topic(6)), 0.0);
    EXPECT_EQ(e.subscriber_count(artist_topic(5)), 1u);
    EXPECT_EQ(e.topic_count(), 1u);
    EXPECT_EQ(e.subscription_count(), 1u);
}

TEST(engine_test, resubscribe_updates_affinity_in_place) {
    engine e;
    EXPECT_TRUE(e.subscribe(1, artist_topic(5), 0.3));
    EXPECT_FALSE(e.subscribe(1, artist_topic(5), 0.9));
    EXPECT_DOUBLE_EQ(e.affinity(1, artist_topic(5)), 0.9);
    EXPECT_EQ(e.subscription_count(), 1u);
}

TEST(engine_test, unsubscribe_removes_and_cleans_up) {
    engine e;
    e.subscribe(1, playlist_topic(2), 0.5);
    e.subscribe(3, playlist_topic(2), 0.4);
    EXPECT_TRUE(e.unsubscribe(1, playlist_topic(2)));
    EXPECT_FALSE(e.unsubscribe(1, playlist_topic(2)));
    EXPECT_FALSE(e.is_subscribed(1, playlist_topic(2)));
    EXPECT_EQ(e.subscriber_count(playlist_topic(2)), 1u);
    EXPECT_TRUE(e.unsubscribe(3, playlist_topic(2)));
    EXPECT_EQ(e.topic_count(), 0u); // empty topics are garbage-collected
}

TEST(engine_test, publish_fans_out_in_subscription_order) {
    engine e;
    e.subscribe(5, artist_topic(1), 0.5);
    e.subscribe(2, artist_topic(1), 0.7);
    e.subscribe(9, artist_topic(1), 0.2);

    std::vector<std::uint32_t> order;
    std::vector<double> affinities;
    publication pub;
    pub.topic = artist_topic(1);
    pub.track = 42;
    pub.at = 100.0;
    const auto delivered = e.publish(pub, [&](std::uint32_t sub, double affinity,
                                              const publication& p) {
        order.push_back(sub);
        affinities.push_back(affinity);
        EXPECT_EQ(p.track, 42u);
        EXPECT_DOUBLE_EQ(p.at, 100.0);
    });
    EXPECT_EQ(delivered, 3u);
    EXPECT_EQ(order, (std::vector<std::uint32_t>{5, 2, 9}));
    EXPECT_EQ(affinities, (std::vector<double>{0.5, 0.7, 0.2}));
}

TEST(engine_test, publish_to_unknown_topic_is_a_noop) {
    engine e;
    int calls = 0;
    publication pub;
    pub.topic = artist_topic(99);
    EXPECT_EQ(e.publish(pub, [&](auto, auto, const auto&) { ++calls; }), 0u);
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(e.publications(), 1u);
    EXPECT_EQ(e.deliveries(), 0u);
}

TEST(engine_test, publisher_is_skipped_on_their_own_feed) {
    engine e;
    e.subscribe(1, user_feed_topic(1), 0.9); // pathological self-follow
    e.subscribe(2, user_feed_topic(1), 0.5);
    publication pub;
    pub.topic = user_feed_topic(1);
    pub.publisher = 1;
    std::vector<std::uint32_t> receivers;
    e.publish(pub, [&](std::uint32_t sub, double, const publication&) {
        receivers.push_back(sub);
    });
    EXPECT_EQ(receivers, (std::vector<std::uint32_t>{2}));
}

TEST(engine_test, publisher_is_not_skipped_on_other_topic_kinds) {
    engine e;
    e.subscribe(1, artist_topic(1), 0.9);
    publication pub;
    pub.topic = artist_topic(1);
    pub.publisher = 1; // meaningless for artist topics; must not skip
    int calls = 0;
    e.publish(pub, [&](auto, auto, const auto&) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(engine_test, statistics_accumulate) {
    engine e;
    e.subscribe(1, artist_topic(1), 0.5);
    e.subscribe(2, artist_topic(1), 0.5);
    publication pub;
    pub.topic = artist_topic(1);
    for (int i = 0; i < 3; ++i) e.publish(pub, [](auto, auto, const auto&) {});
    EXPECT_EQ(e.publications(), 3u);
    EXPECT_EQ(e.deliveries(), 6u);
}

TEST(engine_test, rejects_invalid_input) {
    engine e;
    EXPECT_THROW(e.subscribe(1, artist_topic(1), 0.0), richnote::precondition_error);
    EXPECT_THROW(e.subscribe(1, artist_topic(1), 1.5), richnote::precondition_error);
    e.subscribe(1, artist_topic(1), 0.5);
    publication pub;
    pub.topic = artist_topic(1);
    EXPECT_THROW(e.publish(pub, nullptr), richnote::precondition_error);
}

TEST(engine_test, unsubscribe_all_removes_every_subscription) {
    engine e;
    e.subscribe(1, artist_topic(1), 0.5);
    e.subscribe(1, playlist_topic(2), 0.5);
    e.subscribe(1, user_feed_topic(3), 0.5);
    e.subscribe(2, artist_topic(1), 0.5);
    EXPECT_EQ(e.unsubscribe_all(1), 3u);
    EXPECT_EQ(e.subscription_count(), 1u);
    EXPECT_FALSE(e.is_subscribed(1, artist_topic(1)));
    EXPECT_TRUE(e.is_subscribed(2, artist_topic(1)));
    // Emptied topics are garbage-collected.
    EXPECT_EQ(e.topic_count(), 1u);
    EXPECT_EQ(e.unsubscribe_all(1), 0u); // idempotent
}

// ---------------------------------------------------- content filters ----

TEST(content_filter_test, default_filter_passes_everything) {
    const richnote::pubsub::content_filter any;
    publication pub;
    pub.popularity = 0.0;
    pub.genre = 31;
    EXPECT_TRUE(any.passes(pub));
}

TEST(content_filter_test, min_popularity_gates_deliveries) {
    engine e;
    richnote::pubsub::content_filter picky;
    picky.min_popularity = 50.0;
    e.subscribe(1, artist_topic(1), 0.5, picky);
    e.subscribe(2, artist_topic(1), 0.5); // unfiltered

    publication obscure;
    obscure.topic = artist_topic(1);
    obscure.popularity = 10.0;
    std::vector<std::uint32_t> receivers;
    e.publish(obscure, [&](std::uint32_t sub, double, const publication&) {
        receivers.push_back(sub);
    });
    EXPECT_EQ(receivers, (std::vector<std::uint32_t>{2}));
    EXPECT_EQ(e.filtered(), 1u);

    publication hit;
    hit.topic = artist_topic(1);
    hit.popularity = 90.0;
    receivers.clear();
    e.publish(hit, [&](std::uint32_t sub, double, const publication&) {
        receivers.push_back(sub);
    });
    EXPECT_EQ(receivers, (std::vector<std::uint32_t>{1, 2}));
}

TEST(content_filter_test, genre_mask_selects_genres) {
    engine e;
    richnote::pubsub::content_filter jazz_only;
    jazz_only.genre_mask = 1u << 4; // genre index 4
    e.subscribe(1, playlist_topic(0), 0.5, jazz_only);

    publication pop;
    pop.topic = playlist_topic(0);
    pop.genre = 0;
    int calls = 0;
    e.publish(pop, [&](auto, auto, const auto&) { ++calls; });
    EXPECT_EQ(calls, 0);

    publication jazz;
    jazz.topic = playlist_topic(0);
    jazz.genre = 4;
    e.publish(jazz, [&](auto, auto, const auto&) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(content_filter_test, resubscribe_replaces_the_filter) {
    engine e;
    richnote::pubsub::content_filter picky;
    picky.min_popularity = 99.0;
    e.subscribe(1, artist_topic(1), 0.5, picky);
    e.subscribe(1, artist_topic(1), 0.5); // back to pass-everything
    publication pub;
    pub.topic = artist_topic(1);
    pub.popularity = 1.0;
    int calls = 0;
    e.publish(pub, [&](auto, auto, const auto&) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(content_filter_test, workload_publications_carry_attributes) {
    richnote::trace::workload_params p;
    p.user_count = 20;
    p.catalog.artist_count = 30;
    p.playlist_count = 5;
    p.horizon = richnote::sim::days;
    const richnote::trace::workload world(p, 3);
    // The generator uses pass-everything filters, so nothing is filtered...
    EXPECT_EQ(world.pubsub().filtered(), 0u);
    // ...and every notification's track attributes were available to
    // filters (spot-check one against the catalog).
    for (const auto& stream : world.notifications().per_user) {
        for (const auto& n : stream) {
            EXPECT_GE(world.catalog().track_at(n.track).popularity, 1.0);
        }
    }
}

// ------------------------- integration with the workload generator -------

TEST(engine_workload, generator_builds_its_subscriptions_in_the_engine) {
    richnote::trace::workload_params p;
    p.user_count = 40;
    p.catalog.artist_count = 50;
    p.playlist_count = 10;
    p.horizon = richnote::sim::days;
    const richnote::trace::workload world(p, 11);
    const auto& e = world.pubsub();

    // Every friendship edge appears as a feed subscription (both ways).
    std::uint64_t expected_feed_subs = 0;
    for (richnote::trace::user_id u = 0; u < world.user_count(); ++u)
        expected_feed_subs += world.graph().friends_of(u).size();
    std::uint64_t expected_other = 0;
    for (const auto& profile : world.users())
        expected_other += profile.followed_artists.size() + profile.followed_playlists.size();
    EXPECT_EQ(e.subscription_count(), expected_feed_subs + expected_other);

    // The trace notifications are exactly the engine's thinned deliveries:
    // every notification corresponds to a delivery, so deliveries >= trace.
    EXPECT_GE(e.deliveries(), world.notifications().total_count);
    EXPECT_GT(e.publications(), 0u);

    // Spot-check: a friend-feed subscription's affinity equals the tie.
    const auto& friends = world.graph().friends_of(0);
    ASSERT_FALSE(friends.empty());
    EXPECT_DOUBLE_EQ(e.affinity(0, user_feed_topic(friends[0].friend_user)),
                     friends[0].tie_strength);
}

} // namespace

#include "trace/survey.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/regression.hpp"

namespace {

using richnote::trace::pcm_size_bytes;
using richnote::trace::survey;
using richnote::trace::survey_params;

TEST(pcm_size, matches_rate_times_duration) {
    // 16-bit mono: 8 kHz * 2 B * 5 s = 80 KB.
    EXPECT_DOUBLE_EQ(pcm_size_bytes(8.0, 5.0), 80'000.0);
    EXPECT_DOUBLE_EQ(pcm_size_bytes(44.0, 40.0), 3'520'000.0);
}

TEST(survey, produces_the_full_rating_grid) {
    const survey s(survey_params{}, 1);
    // Paper §V-B: 4 rates x 5 durations = 20 rated presentations.
    EXPECT_EQ(s.ratings().size(), 20u);
}

TEST(survey, ratings_are_on_the_0_5_scale) {
    const survey s(survey_params{}, 2);
    for (const auto& r : s.ratings()) {
        EXPECT_GE(r.mean_score, 0.0);
        EXPECT_LE(r.mean_score, 5.0);
    }
}

TEST(survey, scores_span_a_paper_like_range) {
    // Paper: "utility scores for these 20 presentations varied from 0.3 to
    // 3.3". We check the simulated spread is similar (not degenerate).
    const survey s(survey_params{}, 3);
    double lo = 5.0, hi = 0.0;
    for (const auto& r : s.ratings()) {
        lo = std::min(lo, r.mean_score);
        hi = std::max(hi, r.mean_score);
    }
    EXPECT_LT(lo, 1.0);
    EXPECT_GT(hi, 2.5);
    EXPECT_LT(hi, 4.0);
}

TEST(survey, latent_score_is_monotone_in_both_attributes) {
    const survey s(survey_params{}, 4);
    EXPECT_LT(s.latent_score(8.0, 10.0), s.latent_score(44.0, 10.0));
    EXPECT_LT(s.latent_score(16.0, 5.0), s.latent_score(16.0, 40.0));
}

TEST(survey, latent_score_has_diminishing_rate_returns) {
    const survey s(survey_params{}, 4);
    const double gain_low = s.latent_score(16.0, 20.0) - s.latent_score(8.0, 20.0);
    const double gain_high = s.latent_score(44.0, 20.0) - s.latent_score(36.0, 20.0);
    EXPECT_GT(gain_low, gain_high);
}

TEST(survey, stop_durations_are_positive_and_counted) {
    survey_params p;
    p.respondents = 80;
    const survey s(p, 5);
    EXPECT_EQ(s.stop_durations().size(), 80u);
    for (double d : s.stop_durations()) EXPECT_GT(d, 0.0);
}

TEST(survey, duration_utility_is_a_cdf) {
    const survey s(survey_params{}, 6);
    const auto util = s.duration_utility({5, 10, 20, 30, 40, 1000});
    for (std::size_t i = 0; i < util.size(); ++i) {
        EXPECT_GE(util[i], 0.0);
        EXPECT_LE(util[i], 1.0);
        if (i > 0) {
            EXPECT_GE(util[i], util[i - 1]);
        }
    }
    EXPECT_DOUBLE_EQ(util.back(), 1.0); // everyone stops before 1000 s
}

TEST(survey, log_fit_on_survey_cdf_resembles_paper_equation_8) {
    // Fitting the paper's pipeline on the simulated survey should produce a
    // rising log law with coefficients in the neighbourhood of Eq. 8
    // (a = -0.397, b = 0.352) — the latent stop-duration law was chosen to
    // make this hold.
    survey_params p;
    p.respondents = 5000; // large survey for a tight fit
    const survey s(p, 7);
    const std::vector<double> grid = {5, 10, 20, 30, 40};
    const auto util = s.duration_utility(grid);
    const auto fit = richnote::fit_log_law(grid, util);
    EXPECT_GT(fit.slope, 0.2);
    EXPECT_LT(fit.slope, 0.5);
    EXPECT_GT(fit.r_squared, 0.95);
}

TEST(survey, deterministic_under_seed) {
    const survey a(survey_params{}, 42);
    const survey b(survey_params{}, 42);
    for (std::size_t i = 0; i < a.ratings().size(); ++i)
        EXPECT_DOUBLE_EQ(a.ratings()[i].mean_score, b.ratings()[i].mean_score);
}

TEST(survey, rejects_invalid_parameters) {
    survey_params p;
    p.respondents = 1;
    EXPECT_THROW(survey(p, 1), richnote::precondition_error);
    p = survey_params{};
    p.durations_sec.clear();
    EXPECT_THROW(survey(p, 1), richnote::precondition_error);
}

} // namespace

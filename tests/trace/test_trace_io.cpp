#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::trace::notification_trace;
using richnote::trace::read_trace_csv;
using richnote::trace::workload;
using richnote::trace::workload_params;
using richnote::trace::write_trace_csv;

workload small_world(std::uint64_t seed = 3) {
    workload_params p;
    p.user_count = 25;
    p.catalog.artist_count = 40;
    p.playlist_count = 8;
    p.horizon = 2.0 * richnote::sim::days;
    return workload(p, seed);
}

TEST(trace_io, round_trip_preserves_everything) {
    const workload world = small_world();
    const notification_trace& original = world.notifications();

    std::stringstream buffer;
    const std::size_t rows = write_trace_csv(buffer, original);
    EXPECT_EQ(rows, original.total_count);

    const notification_trace loaded = read_trace_csv(buffer, original.user_count());
    ASSERT_EQ(loaded.total_count, original.total_count);
    EXPECT_EQ(loaded.attended_count, original.attended_count);
    EXPECT_EQ(loaded.clicked_count, original.clicked_count);
    ASSERT_EQ(loaded.per_user.size(), original.per_user.size());
    for (std::size_t u = 0; u < original.per_user.size(); ++u) {
        const auto& a = original.per_user[u];
        const auto& b = loaded.per_user[u];
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id);
            EXPECT_EQ(a[i].recipient, b[i].recipient);
            EXPECT_EQ(a[i].type, b[i].type);
            EXPECT_EQ(a[i].track, b[i].track);
            EXPECT_DOUBLE_EQ(a[i].created_at, b[i].created_at);
            EXPECT_DOUBLE_EQ(a[i].features.social_tie, b[i].features.social_tie);
            EXPECT_DOUBLE_EQ(a[i].features.track_popularity,
                             b[i].features.track_popularity);
            EXPECT_EQ(a[i].features.weekend, b[i].features.weekend);
            EXPECT_EQ(a[i].features.daytime, b[i].features.daytime);
            EXPECT_EQ(a[i].attended, b[i].attended);
            EXPECT_EQ(a[i].clicked, b[i].clicked);
            EXPECT_DOUBLE_EQ(a[i].clicked_at, b[i].clicked_at);
        }
    }
}

TEST(trace_io, empty_trace_round_trips) {
    notification_trace empty;
    empty.per_user.resize(3);
    std::stringstream buffer;
    EXPECT_EQ(write_trace_csv(buffer, empty), 0u);
    const notification_trace loaded = read_trace_csv(buffer, 3);
    EXPECT_EQ(loaded.total_count, 0u);
    EXPECT_EQ(loaded.per_user.size(), 3u);
}

TEST(trace_io, rejects_wrong_header) {
    std::stringstream buffer("id,oops\n");
    EXPECT_THROW(read_trace_csv(buffer, 2), richnote::precondition_error);
}

TEST(trace_io, rejects_empty_file) {
    std::stringstream buffer;
    EXPECT_THROW(read_trace_csv(buffer, 2), richnote::precondition_error);
}

std::string header_line() {
    return "id,recipient,type,track,created_at,social_tie,track_popularity,"
           "album_popularity,artist_popularity,weekend,daytime,attended,clicked,"
           "clicked_at\n";
}

TEST(trace_io, rejects_out_of_range_recipient) {
    std::stringstream buffer(header_line() +
                             "0,7,friend_feed,1,10,0.5,50,50,50,0,1,1,0,0\n");
    EXPECT_THROW(read_trace_csv(buffer, 2), richnote::precondition_error);
}

TEST(trace_io, rejects_unknown_type_and_bad_booleans) {
    std::stringstream bad_type(header_line() +
                               "0,0,spam,1,10,0.5,50,50,50,0,1,1,0,0\n");
    EXPECT_THROW(read_trace_csv(bad_type, 2), richnote::precondition_error);
    std::stringstream bad_bool(header_line() +
                               "0,0,friend_feed,1,10,0.5,50,50,50,maybe,1,1,0,0\n");
    EXPECT_THROW(read_trace_csv(bad_bool, 2), richnote::precondition_error);
}

TEST(trace_io, rejects_clicked_without_attended) {
    std::stringstream buffer(header_line() +
                             "0,0,friend_feed,1,10,0.5,50,50,50,0,1,0,1,20\n");
    EXPECT_THROW(read_trace_csv(buffer, 2), richnote::precondition_error);
}

TEST(trace_io, rejects_time_disorder_within_a_user) {
    std::stringstream buffer(header_line() +
                             "0,0,friend_feed,1,10,0.5,50,50,50,0,1,0,0,0\n"
                             "1,0,friend_feed,1,5,0.5,50,50,50,0,1,0,0,0\n");
    EXPECT_THROW(read_trace_csv(buffer, 2), richnote::precondition_error);
}

TEST(trace_io, rejects_short_rows) {
    std::stringstream buffer(header_line() + "0,0,friend_feed\n");
    EXPECT_THROW(read_trace_csv(buffer, 2), richnote::precondition_error);
}

TEST(trace_io, file_helpers_round_trip) {
    const workload world = small_world(9);
    const std::string path = ::testing::TempDir() + "richnote_trace_io_test.csv";
    const std::size_t rows = richnote::trace::save_trace(path, world.notifications());
    EXPECT_EQ(rows, world.notifications().total_count);
    const auto loaded =
        richnote::trace::load_trace(path, world.notifications().user_count());
    EXPECT_EQ(loaded.total_count, world.notifications().total_count);
    std::remove(path.c_str());
}

TEST(trace_io, missing_file_throws) {
    EXPECT_THROW(richnote::trace::load_trace("/nonexistent/nowhere.csv", 2),
                 richnote::precondition_error);
}

} // namespace

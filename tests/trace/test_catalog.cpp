#include "trace/catalog.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::trace::catalog;
using richnote::trace::catalog_params;

catalog make_small_catalog(std::uint64_t seed = 1) {
    catalog_params p;
    p.artist_count = 50;
    rng gen(seed);
    return catalog(p, gen);
}

TEST(catalog, respects_structural_parameters) {
    catalog_params p;
    p.artist_count = 20;
    p.min_albums_per_artist = 2;
    p.max_albums_per_artist = 2;
    p.min_tracks_per_album = 5;
    p.max_tracks_per_album = 5;
    rng gen(3);
    catalog c(p, gen);
    EXPECT_EQ(c.artist_count(), 20u);
    EXPECT_EQ(c.album_count(), 40u);
    EXPECT_EQ(c.track_count(), 200u);
}

TEST(catalog, ids_are_dense_and_cross_referenced) {
    const catalog c = make_small_catalog();
    for (std::size_t t = 0; t < c.track_count(); ++t) {
        const auto& track = c.track_at(static_cast<richnote::trace::track_id>(t));
        EXPECT_EQ(track.id, t);
        const auto& album = c.album_at(track.on);
        EXPECT_EQ(album.by, track.by);
        EXPECT_GE(track.id, album.first_track);
        EXPECT_LT(track.id, album.first_track + album.track_count);
    }
}

TEST(catalog, popularity_is_in_paper_range) {
    const catalog c = make_small_catalog();
    for (const auto& a : c.artists()) {
        EXPECT_GE(a.popularity, 1.0);
        EXPECT_LE(a.popularity, 100.0);
    }
    for (const auto& t : c.tracks()) {
        EXPECT_GE(t.popularity, 1.0);
        EXPECT_LE(t.popularity, 100.0);
    }
}

TEST(catalog, artist_popularity_decreases_with_rank) {
    const catalog c = make_small_catalog();
    for (std::size_t a = 1; a < c.artist_count(); ++a) {
        EXPECT_LE(c.artist_at(static_cast<richnote::trace::artist_id>(a)).popularity,
                  c.artist_at(static_cast<richnote::trace::artist_id>(a - 1)).popularity);
    }
}

TEST(catalog, track_durations_are_plausible) {
    const catalog c = make_small_catalog();
    double total = 0;
    for (const auto& t : c.tracks()) {
        EXPECT_GE(t.duration_sec, 30.0);
        total += t.duration_sec;
    }
    const double mean = total / static_cast<double>(c.track_count());
    EXPECT_NEAR(mean, 276.0, 25.0); // §V-B: average track duration 276 s
}

TEST(catalog, popularity_sampling_prefers_popular_tracks) {
    const catalog c = make_small_catalog();
    rng gen(7);
    double popular_sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        popular_sum += c.track_at(c.sample_track_by_popularity(gen)).popularity;
    double uniform_sum = 0;
    for (const auto& t : c.tracks()) uniform_sum += t.popularity;
    const double uniform_mean = uniform_sum / static_cast<double>(c.track_count());
    EXPECT_GT(popular_sum / n, uniform_mean * 1.1);
}

TEST(catalog, sample_track_of_artist_belongs_to_artist) {
    const catalog c = make_small_catalog();
    rng gen(9);
    for (int i = 0; i < 500; ++i) {
        const auto artist = c.sample_artist_by_popularity(gen);
        const auto track = c.sample_track_of_artist(artist, gen);
        EXPECT_EQ(c.track_at(track).by, artist);
    }
}

TEST(catalog, same_seed_is_reproducible) {
    const catalog a = make_small_catalog(42);
    const catalog b = make_small_catalog(42);
    ASSERT_EQ(a.track_count(), b.track_count());
    for (std::size_t t = 0; t < a.track_count(); ++t) {
        const auto id = static_cast<richnote::trace::track_id>(t);
        EXPECT_DOUBLE_EQ(a.track_at(id).popularity, b.track_at(id).popularity);
        EXPECT_DOUBLE_EQ(a.track_at(id).duration_sec, b.track_at(id).duration_sec);
    }
}

TEST(catalog, rejects_invalid_parameters) {
    rng gen(1);
    catalog_params p;
    p.artist_count = 0;
    EXPECT_THROW(catalog(p, gen), richnote::precondition_error);
    p = catalog_params{};
    p.min_albums_per_artist = 3;
    p.max_albums_per_artist = 2;
    EXPECT_THROW(catalog(p, gen), richnote::precondition_error);
    p = catalog_params{};
    p.mean_track_duration_sec = -1;
    EXPECT_THROW(catalog(p, gen), richnote::precondition_error);
}

TEST(catalog, lookup_rejects_out_of_range_ids) {
    const catalog c = make_small_catalog();
    EXPECT_THROW(c.track_at(static_cast<richnote::trace::track_id>(c.track_count())),
                 richnote::precondition_error);
    EXPECT_THROW(c.artist_at(static_cast<richnote::trace::artist_id>(c.artist_count())),
                 richnote::precondition_error);
}

} // namespace

#include "trace/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::trace::analyze;
using richnote::trace::heaviest_users;
using richnote::trace::notification;
using richnote::trace::notification_trace;
using richnote::trace::notification_type;
using richnote::trace::restrict_to_users;

notification make_note(std::uint32_t user, double created_at, notification_type type,
                       bool attended, bool clicked) {
    notification n;
    n.recipient = user;
    n.created_at = created_at;
    n.type = type;
    n.attended = attended;
    n.clicked = clicked;
    n.features.social_tie = 0.5;
    n.features.track_popularity = 40.0;
    return n;
}

notification_trace tiny_trace() {
    notification_trace t;
    t.per_user.resize(3);
    auto add = [&](const notification& n) {
        t.per_user[n.recipient].push_back(n);
        ++t.total_count;
        if (n.attended) ++t.attended_count;
        if (n.clicked) ++t.clicked_count;
    };
    using nt = notification_type;
    add(make_note(0, 1.0 * 3600, nt::friend_feed, true, true));
    add(make_note(0, 10.0 * 3600, nt::friend_feed, true, false));
    add(make_note(0, 20.0 * 3600, nt::album_release, false, false));
    add(make_note(2, 5.0 * 3600, nt::playlist_update, true, true));
    return t;
}

TEST(trace_stats, counts_and_rates) {
    const auto stats = analyze(tiny_trace());
    EXPECT_EQ(stats.total, 4u);
    EXPECT_EQ(stats.attended, 3u);
    EXPECT_EQ(stats.clicked, 2u);
    EXPECT_EQ(stats.users, 3u);
    EXPECT_EQ(stats.active_users, 2u); // user 1 has nothing
    EXPECT_DOUBLE_EQ(stats.attention_rate, 0.75);
    EXPECT_NEAR(stats.click_through_rate, 2.0 / 3.0, 1e-12);
}

TEST(trace_stats, per_user_distribution_over_active_users) {
    const auto stats = analyze(tiny_trace());
    EXPECT_DOUBLE_EQ(stats.items_per_user_mean, 2.0); // (3 + 1) / 2 active
    EXPECT_DOUBLE_EQ(stats.items_per_user_max, 3.0);
}

TEST(trace_stats, type_mix_and_fractions) {
    const auto stats = analyze(tiny_trace());
    EXPECT_DOUBLE_EQ(stats.type_fraction(notification_type::friend_feed), 0.5);
    EXPECT_DOUBLE_EQ(stats.type_fraction(notification_type::album_release), 0.25);
    EXPECT_DOUBLE_EQ(stats.type_fraction(notification_type::playlist_update), 0.25);
}

TEST(trace_stats, temporal_shape) {
    const auto stats = analyze(tiny_trace());
    // Timestamps at hours 1, 10, 20, 5 on day 0 (Monday): no weekend.
    EXPECT_DOUBLE_EQ(stats.weekend_fraction, 0.0);
    EXPECT_DOUBLE_EQ(stats.hourly_fraction[1], 0.25);
    EXPECT_DOUBLE_EQ(stats.hourly_fraction[10], 0.25);
    EXPECT_DOUBLE_EQ(stats.span, 19.0 * 3600.0);
    double total = 0;
    for (double f : stats.hourly_fraction) total += f;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(trace_stats, empty_trace_is_all_zero) {
    notification_trace empty;
    empty.per_user.resize(2);
    const auto stats = analyze(empty);
    EXPECT_EQ(stats.total, 0u);
    EXPECT_EQ(stats.active_users, 0u);
    EXPECT_DOUBLE_EQ(stats.attention_rate, 0.0);
    EXPECT_DOUBLE_EQ(stats.items_per_user_mean, 0.0);
}

TEST(heaviest_users_fn, orders_by_load_with_id_tiebreak) {
    const auto trace = tiny_trace();
    const auto top = heaviest_users(trace, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 0u); // 3 items
    EXPECT_EQ(top[1], 2u); // 1 item (user 1 has 0, loses tie-break ordering)
    EXPECT_THROW(heaviest_users(trace, 0), richnote::precondition_error);
}

TEST(restrict_to_users_fn, keeps_only_selected_streams) {
    const auto trace = tiny_trace();
    const auto restricted = restrict_to_users(trace, {2});
    EXPECT_EQ(restricted.total_count, 1u);
    EXPECT_EQ(restricted.clicked_count, 1u);
    EXPECT_TRUE(restricted.per_user[0].empty());
    EXPECT_EQ(restricted.per_user[2].size(), 1u);
    EXPECT_THROW(restrict_to_users(trace, {9}), richnote::precondition_error);
}

TEST(trace_stats, generated_workload_has_the_paper_shape) {
    richnote::trace::workload_params p;
    p.user_count = 50;
    p.catalog.artist_count = 60;
    p.playlist_count = 10;
    const richnote::trace::workload world(p, 5);
    const auto stats = analyze(world.notifications());

    // §II: friend feeds dominate the other topic classes.
    EXPECT_GT(stats.type_fraction(notification_type::friend_feed), 0.5);
    // Diurnal listening: evenings busier than pre-dawn.
    EXPECT_GT(stats.hourly_fraction[20], stats.hourly_fraction[3]);
    // Weekend share near 2/7 (uniform weekday mix).
    EXPECT_NEAR(stats.weekend_fraction, 2.0 / 7.0, 0.06);
    // The paper's selection step works on this trace: top users carry more.
    const auto top = heaviest_users(world.notifications(), 5);
    const auto restricted = restrict_to_users(world.notifications(), top);
    EXPECT_GT(static_cast<double>(restricted.total_count),
              0.15 * static_cast<double>(stats.total));
}

} // namespace

#include "trace/click_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/time.hpp"

namespace {

using richnote::rng;
using richnote::trace::click_model;
using richnote::trace::click_model_params;
using richnote::trace::notification;
using richnote::trace::notification_features;
using richnote::trace::sigmoid;

click_model make_model(std::size_t users = 10, std::uint64_t seed = 1) {
    rng gen(seed);
    return click_model(click_model_params{}, users, gen);
}

notification_features mid_features() {
    notification_features f;
    f.social_tie = 0.5;
    f.track_popularity = 50;
    f.album_popularity = 50;
    f.artist_popularity = 50;
    f.weekend = false;
    f.daytime = true;
    return f;
}

TEST(sigmoid_fn, known_values_and_symmetry) {
    EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
    EXPECT_NEAR(sigmoid(10.0), 1.0, 1e-4);
    EXPECT_NEAR(sigmoid(-10.0), 0.0, 1e-4);
    EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(sigmoid_fn, extreme_inputs_do_not_overflow) {
    EXPECT_DOUBLE_EQ(sigmoid(1000.0), 1.0);
    EXPECT_DOUBLE_EQ(sigmoid(-1000.0), 0.0);
}

TEST(click_model, probability_is_a_probability) {
    const auto model = make_model();
    notification_features f = mid_features();
    for (double tie : {0.0, 0.3, 1.0}) {
        f.social_tie = tie;
        const double p = model.click_probability(0, f);
        EXPECT_GT(p, 0.0);
        EXPECT_LT(p, 1.0);
    }
}

TEST(click_model, stronger_tie_raises_probability) {
    const auto model = make_model();
    notification_features lo = mid_features();
    notification_features hi = mid_features();
    lo.social_tie = 0.1;
    hi.social_tie = 0.9;
    EXPECT_GT(model.click_probability(3, hi), model.click_probability(3, lo));
}

TEST(click_model, popularity_raises_probability) {
    const auto model = make_model();
    notification_features lo = mid_features();
    notification_features hi = mid_features();
    lo.track_popularity = 5;
    hi.track_popularity = 95;
    EXPECT_GT(model.click_probability(0, hi), model.click_probability(0, lo));
}

TEST(click_model, daytime_and_weekend_raise_probability) {
    const auto model = make_model();
    notification_features base = mid_features();
    base.daytime = false;
    base.weekend = false;
    notification_features day = base;
    day.daytime = true;
    notification_features weekend = base;
    weekend.weekend = true;
    EXPECT_GT(model.click_probability(0, day), model.click_probability(0, base));
    EXPECT_GT(model.click_probability(0, weekend), model.click_probability(0, base));
}

TEST(click_model, user_biases_differ) {
    const auto model = make_model(50, 9);
    const auto f = mid_features();
    bool found_difference = false;
    const double p0 = model.click_probability(0, f);
    for (richnote::trace::user_id u = 1; u < 50; ++u) {
        if (std::abs(model.click_probability(u, f) - p0) > 1e-9) {
            found_difference = true;
            break;
        }
    }
    EXPECT_TRUE(found_difference);
}

TEST(click_model, label_click_implies_attended_and_future_click_time) {
    const auto model = make_model();
    rng gen(5);
    int clicked = 0, attended = 0;
    for (int i = 0; i < 5000; ++i) {
        notification n;
        n.recipient = 0;
        n.created_at = 12.0 * richnote::sim::hours;
        n.features = mid_features();
        model.label(n, gen);
        if (n.clicked) {
            EXPECT_TRUE(n.attended);
            EXPECT_GT(n.clicked_at, n.created_at);
            ++clicked;
        }
        if (n.attended) ++attended;
    }
    EXPECT_GT(attended, 0);
    EXPECT_GT(clicked, 0);
    EXPECT_LT(clicked, attended + 1);
}

TEST(click_model, attention_is_lower_at_night) {
    const auto model = make_model();
    rng gen(7);
    int day_attended = 0, night_attended = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        notification day;
        day.recipient = 0;
        day.created_at = 12.0 * richnote::sim::hours;
        day.features = mid_features();
        model.label(day, gen);
        day_attended += day.attended;

        notification night;
        night.recipient = 0;
        night.created_at = 3.0 * richnote::sim::hours;
        night.features = mid_features();
        model.label(night, gen);
        night_attended += night.attended;
    }
    EXPECT_NEAR(static_cast<double>(day_attended) / n, 0.55, 0.02);
    EXPECT_NEAR(static_cast<double>(night_attended) / n, 0.20, 0.02);
}

TEST(click_model, click_frequency_tracks_latent_probability) {
    click_model_params params;
    params.noise_stddev = 0.0;
    params.user_bias_stddev = 0.0;
    rng gen(11);
    click_model model(params, 1, gen);
    const auto f = mid_features();
    const double p = model.click_probability(0, f);
    rng label_gen(13);
    int clicked = 0, attended = 0;
    for (int i = 0; i < 50000; ++i) {
        notification n;
        n.recipient = 0;
        n.created_at = 12.0 * richnote::sim::hours;
        n.features = f;
        model.label(n, label_gen);
        if (n.attended) {
            ++attended;
            clicked += n.clicked;
        }
    }
    EXPECT_NEAR(static_cast<double>(clicked) / attended, p, 0.02);
}

TEST(click_model, rejects_out_of_range_user) {
    const auto model = make_model(5);
    EXPECT_THROW(model.click_probability(5, mid_features()), richnote::precondition_error);
}

} // namespace

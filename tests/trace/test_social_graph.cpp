#include "trace/social_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::trace::social_graph;
using richnote::trace::social_graph_params;

social_graph make_graph(std::size_t users = 300, std::size_t m = 4, std::uint64_t seed = 1) {
    social_graph_params p;
    p.user_count = users;
    p.attachment_edges = m;
    rng gen(seed);
    return social_graph(p, gen);
}

TEST(social_graph, every_user_has_at_least_m_friends) {
    const auto g = make_graph(200, 3);
    for (richnote::trace::user_id u = 0; u < 200; ++u) EXPECT_GE(g.degree(u), 3u);
}

TEST(social_graph, edges_are_symmetric) {
    const auto g = make_graph(150, 4, 7);
    for (richnote::trace::user_id u = 0; u < 150; ++u) {
        for (const auto& f : g.friends_of(u)) {
            EXPECT_GT(g.tie(f.friend_user, u), 0.0)
                << "edge " << u << "->" << f.friend_user << " missing reverse";
        }
    }
}

TEST(social_graph, tie_strengths_are_in_unit_interval_and_sorted) {
    const auto g = make_graph();
    for (richnote::trace::user_id u = 0; u < g.user_count(); ++u) {
        const auto& friends = g.friends_of(u);
        for (std::size_t i = 0; i < friends.size(); ++i) {
            EXPECT_GT(friends[i].tie_strength, 0.0);
            EXPECT_LE(friends[i].tie_strength, 1.0);
            if (i > 0) {
                EXPECT_LE(friends[i].tie_strength, friends[i - 1].tie_strength);
            }
        }
    }
}

TEST(social_graph, strongest_tie_is_one) {
    const auto g = make_graph();
    for (richnote::trace::user_id u = 0; u < g.user_count(); ++u) {
        EXPECT_DOUBLE_EQ(g.friends_of(u).front().tie_strength, 1.0);
    }
}

TEST(social_graph, tie_of_strangers_is_zero) {
    const auto g = make_graph(50, 2, 3);
    // Find some non-adjacent pair.
    for (richnote::trace::user_id v = 1; v < 50; ++v) {
        if (g.tie(0, v) == 0.0) {
            SUCCEED();
            return;
        }
    }
    FAIL() << "graph with m=2 should not be complete";
}

TEST(social_graph, preferential_attachment_creates_hubs) {
    const auto g = make_graph(1000, 2, 11);
    // BA graphs have heavy-tailed degree: the hub should be much larger
    // than the minimum degree m.
    EXPECT_GE(g.max_degree(), 5u * 2u);
}

TEST(social_graph, edge_count_matches_handshake_sum) {
    const auto g = make_graph(120, 3, 13);
    std::size_t degree_sum = 0;
    for (richnote::trace::user_id u = 0; u < 120; ++u) degree_sum += g.degree(u);
    EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

TEST(social_graph, deterministic_under_seed) {
    const auto a = make_graph(100, 3, 21);
    const auto b = make_graph(100, 3, 21);
    for (richnote::trace::user_id u = 0; u < 100; ++u) {
        ASSERT_EQ(a.degree(u), b.degree(u));
        for (std::size_t i = 0; i < a.friends_of(u).size(); ++i) {
            EXPECT_EQ(a.friends_of(u)[i].friend_user, b.friends_of(u)[i].friend_user);
            EXPECT_DOUBLE_EQ(a.friends_of(u)[i].tie_strength,
                             b.friends_of(u)[i].tie_strength);
        }
    }
}

TEST(social_graph, rejects_invalid_parameters) {
    rng gen(1);
    social_graph_params p;
    p.user_count = 1;
    EXPECT_THROW(social_graph(p, gen), richnote::precondition_error);
    p = social_graph_params{};
    p.attachment_edges = 0;
    EXPECT_THROW(social_graph(p, gen), richnote::precondition_error);
    p = social_graph_params{};
    p.tie_decay = 1.5;
    EXPECT_THROW(social_graph(p, gen), richnote::precondition_error);
}

TEST(social_graph, out_of_range_user_throws) {
    const auto g = make_graph(50);
    EXPECT_THROW(g.friends_of(50), richnote::precondition_error);
}

} // namespace

#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "sim/time.hpp"

namespace {

using richnote::trace::notification_type;
using richnote::trace::workload;
using richnote::trace::workload_params;
namespace t = richnote::sim;

workload_params small_params() {
    workload_params p;
    p.user_count = 60;
    p.catalog.artist_count = 100;
    p.playlist_count = 20;
    return p;
}

class generator_test : public ::testing::Test {
protected:
    static void SetUpTestSuite() { world_ = new workload(small_params(), 5); }
    static void TearDownTestSuite() {
        delete world_;
        world_ = nullptr;
    }
    static workload* world_;
};

workload* generator_test::world_ = nullptr;

TEST_F(generator_test, streams_are_time_sorted) {
    for (const auto& stream : world_->notifications().per_user) {
        for (std::size_t i = 1; i < stream.size(); ++i)
            EXPECT_LE(stream[i - 1].created_at, stream[i].created_at);
    }
}

TEST_F(generator_test, ids_are_dense_and_unique) {
    std::set<std::uint64_t> ids;
    for (const auto& stream : world_->notifications().per_user)
        for (const auto& n : stream) ids.insert(n.id);
    EXPECT_EQ(ids.size(), world_->notifications().total_count);
    if (!ids.empty()) {
        EXPECT_EQ(*ids.begin(), 0u);
        EXPECT_EQ(*ids.rbegin(), world_->notifications().total_count - 1);
    }
}

TEST_F(generator_test, counters_match_contents) {
    std::uint64_t total = 0, attended = 0, clicked = 0;
    for (const auto& stream : world_->notifications().per_user) {
        for (const auto& n : stream) {
            ++total;
            attended += n.attended;
            clicked += n.clicked;
        }
    }
    EXPECT_EQ(total, world_->notifications().total_count);
    EXPECT_EQ(attended, world_->notifications().attended_count);
    EXPECT_EQ(clicked, world_->notifications().clicked_count);
    EXPECT_LE(clicked, attended);
    EXPECT_LE(attended, total);
    EXPECT_GT(total, 0u);
}

TEST_F(generator_test, timestamps_are_within_horizon) {
    for (const auto& stream : world_->notifications().per_user) {
        for (const auto& n : stream) {
            EXPECT_GE(n.created_at, 0.0);
            EXPECT_LT(n.created_at, world_->params().horizon);
        }
    }
}

TEST_F(generator_test, recipients_match_stream_index) {
    const auto& per_user = world_->notifications().per_user;
    for (std::size_t u = 0; u < per_user.size(); ++u)
        for (const auto& n : per_user[u]) EXPECT_EQ(n.recipient, u);
}

TEST_F(generator_test, features_are_consistent_with_catalog) {
    const auto& catalog = world_->catalog();
    for (const auto& stream : world_->notifications().per_user) {
        for (const auto& n : stream) {
            const auto& track = catalog.track_at(n.track);
            EXPECT_DOUBLE_EQ(n.features.track_popularity, track.popularity);
            EXPECT_DOUBLE_EQ(n.features.artist_popularity,
                             catalog.artist_at(track.by).popularity);
            EXPECT_DOUBLE_EQ(n.features.album_popularity,
                             catalog.album_at(track.on).popularity);
            EXPECT_EQ(n.features.weekend, t::is_weekend(n.created_at));
            EXPECT_EQ(n.features.daytime, t::is_daytime(n.created_at));
            EXPECT_GT(n.features.social_tie, 0.0);
            EXPECT_LE(n.features.social_tie, 1.0);
        }
    }
}

TEST_F(generator_test, friend_feed_tie_matches_social_graph_range) {
    // Friend-feed ties come from the recipient's adjacency, so they must
    // appear among the recipient's friendship tie strengths.
    const auto& graph = world_->graph();
    for (const auto& stream : world_->notifications().per_user) {
        for (const auto& n : stream) {
            if (n.type != notification_type::friend_feed) continue;
            bool found = false;
            for (const auto& f : graph.friends_of(n.recipient)) {
                if (std::abs(f.tie_strength - n.features.social_tie) < 1e-12) {
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found);
        }
    }
}

TEST_F(generator_test, all_three_topic_classes_appear) {
    std::set<notification_type> seen;
    for (const auto& stream : world_->notifications().per_user)
        for (const auto& n : stream) seen.insert(n.type);
    EXPECT_EQ(seen.size(), 3u);
}

TEST_F(generator_test, friend_feeds_dominate_volume) {
    // §II: friend feeds are "frequent and large in number compared to other
    // publications".
    std::uint64_t feeds = 0, others = 0;
    for (const auto& stream : world_->notifications().per_user) {
        for (const auto& n : stream) {
            (n.type == notification_type::friend_feed ? feeds : others) += 1;
        }
    }
    EXPECT_GT(feeds, others);
}

TEST_F(generator_test, flatten_preserves_count) {
    const auto all = world_->notifications().flatten();
    EXPECT_EQ(all.size(), world_->notifications().total_count);
}

TEST_F(generator_test, mean_load_is_in_target_band) {
    // DESIGN.md: defaults target roughly 60-90 notifications per user-week,
    // keeping the 1-100 MB budget sweep in the adaptive regime.
    const double per_user = static_cast<double>(world_->notifications().total_count) /
                            static_cast<double>(world_->user_count());
    EXPECT_GT(per_user, 30.0);
    EXPECT_LT(per_user, 160.0);
}

TEST(generator, is_deterministic_under_seed) {
    const workload a(small_params(), 99);
    const workload b(small_params(), 99);
    ASSERT_EQ(a.notifications().total_count, b.notifications().total_count);
    for (std::size_t u = 0; u < a.user_count(); ++u) {
        const auto& sa = a.notifications().per_user[u];
        const auto& sb = b.notifications().per_user[u];
        ASSERT_EQ(sa.size(), sb.size());
        for (std::size_t i = 0; i < sa.size(); ++i) {
            EXPECT_EQ(sa[i].id, sb[i].id);
            EXPECT_EQ(sa[i].track, sb[i].track);
            EXPECT_DOUBLE_EQ(sa[i].created_at, sb[i].created_at);
            EXPECT_EQ(sa[i].clicked, sb[i].clicked);
        }
    }
}

TEST(generator, different_seeds_differ) {
    const workload a(small_params(), 1);
    const workload b(small_params(), 2);
    EXPECT_NE(a.notifications().total_count, b.notifications().total_count);
}

TEST(generator, shorter_horizon_means_fewer_notifications) {
    workload_params p = small_params();
    p.horizon = 2.0 * t::days;
    const workload short_world(p, 7);
    const workload week_world(small_params(), 7);
    EXPECT_LT(short_world.notifications().total_count,
              week_world.notifications().total_count);
}

TEST(generator, rejects_invalid_parameters) {
    workload_params p = small_params();
    p.user_count = 1;
    EXPECT_THROW(workload(p, 1), richnote::precondition_error);
    p = small_params();
    p.horizon = 0;
    EXPECT_THROW(workload(p, 1), richnote::precondition_error);
    p = small_params();
    p.notify_probability = 1.5;
    EXPECT_THROW(workload(p, 1), richnote::precondition_error);
}

} // namespace

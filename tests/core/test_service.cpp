// Service-mode integration tests (core/service.hpp): the bit-identity
// contract between `richnote serve` and the batch replay loop, plus the
// operational behaviours a live wire needs — backpressure, idempotent
// duplicate suppression, out-of-order ingest, elastic resharding — and a
// many-seed ingest-vs-batch equivalence property.
//
// Lives in test_integration so scripts/check.sh --tsan covers the
// persistent worker pool and the MPSC admission ring under TSan.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/wire.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_sink.hpp"
#include "trace/notification.hpp"

namespace {

using richnote::core::experiment_params;
using richnote::core::experiment_result;
using richnote::core::experiment_setup;
using richnote::core::notification_service;
using richnote::core::run_experiment;
using richnote::core::scheduler_kind;
using richnote::core::service_params;
using richnote::trace::notification;
using ingest_status = notification_service::ingest_status;

/// One shared setup (workload + trained forest) for the whole suite.
class service_test : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        experiment_setup::options opts;
        opts.workload.user_count = 24;
        opts.workload.catalog.artist_count = 60;
        opts.workload.playlist_count = 10;
        opts.forest.tree_count = 8;
        opts.seed = 33;
        setup_ = new experiment_setup(opts);
    }
    static void TearDownTestSuite() {
        delete setup_;
        setup_ = nullptr;
    }

    static experiment_params batch_params() {
        experiment_params p;
        p.kind = scheduler_kind::richnote;
        p.weekly_budget_mb = 5.0;
        p.seed = 7;
        return p;
    }

    static service_params serve_params(std::size_t threads) {
        service_params sp;
        sp.experiment = batch_params();
        sp.worker_threads = threads;
        return sp;
    }

    /// Replays the whole generated workload into `svc` over the NDJSON
    /// wire, exactly as a producer would — every line goes through
    /// format_wire_line + ingest_line.
    static void ingest_workload(notification_service& svc) {
        for (const auto& stream : setup_->world().notifications().per_user) {
            for (const notification& n : stream) {
                const auto status =
                    svc.ingest_line(richnote::core::format_wire_line(n));
                ASSERT_EQ(status, ingest_status::accepted);
            }
        }
    }

    /// The fields the bit-identity contract covers, compared exactly.
    static void expect_identical(const experiment_result& a, const experiment_result& b) {
        EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
        EXPECT_EQ(a.delivered_mb, b.delivered_mb);
        EXPECT_EQ(a.metered_mb, b.metered_mb);
        EXPECT_EQ(a.recall, b.recall);
        EXPECT_EQ(a.precision, b.precision);
        EXPECT_EQ(a.total_utility, b.total_utility);
        EXPECT_EQ(a.utility_clicked, b.utility_clicked);
        EXPECT_EQ(a.energy_kj, b.energy_kj);
        EXPECT_EQ(a.mean_delay_min, b.mean_delay_min);
        EXPECT_EQ(a.level_mix, b.level_mix);
        EXPECT_EQ(a.final_queue_items, b.final_queue_items);
    }

    static experiment_setup* setup_;
};

experiment_setup* service_test::setup_ = nullptr;

TEST_F(service_test, wire_replay_matches_batch_run_bitwise) {
    // The tentpole contract: the same stream admitted over the wire and
    // run by the sharded service produces bit-identical aggregates to
    // run_experiment's in-process replay.
    const experiment_result batch = run_experiment(*setup_, batch_params());

    notification_service svc(*setup_, serve_params(3));
    ingest_workload(svc);
    svc.run_rounds(batch.rounds_run);

    const experiment_result served = svc.summarize();
    EXPECT_EQ(served.rounds_run, batch.rounds_run);
    expect_identical(served, batch);
    const auto counters = svc.counters();
    EXPECT_EQ(counters.ingest_accepted, setup_->world().notifications().total_count);
    EXPECT_EQ(counters.admitted, counters.ingest_accepted);
    EXPECT_EQ(counters.pending, 0u);
}

TEST_F(service_test, worker_count_never_changes_outputs) {
    notification_service one(*setup_, serve_params(1));
    notification_service four(*setup_, serve_params(4));
    ingest_workload(one);
    ingest_workload(four);
    one.run_rounds(50);
    four.run_rounds(50);
    expect_identical(one.summarize(), four.summarize());
    // Per-user agreement, not just totals: every user's delivered set has
    // the same size, bytes and utility regardless of sharding.
    for (std::size_t u = 0; u < setup_->world().user_count(); ++u) {
        SCOPED_TRACE(u);
        EXPECT_EQ(one.metrics().user(u).delivered, four.metrics().user(u).delivered);
        EXPECT_EQ(one.metrics().user(u).bytes_delivered,
                  four.metrics().user(u).bytes_delivered);
        EXPECT_EQ(one.metrics().user(u).utility_delivered,
                  four.metrics().user(u).utility_delivered);
    }
}

TEST_F(service_test, midrun_reshard_is_lossless) {
    notification_service straight(*setup_, serve_params(2));
    ingest_workload(straight);
    straight.run_rounds(60);

    notification_service resharded(*setup_, serve_params(2));
    ingest_workload(resharded);
    resharded.run_rounds(20);
    resharded.reshard(5);
    EXPECT_EQ(resharded.worker_threads(), 5u);
    resharded.run_rounds(25);
    resharded.reshard(1);
    resharded.run_rounds(15);

    EXPECT_EQ(resharded.counters().reshards, 2u);
    expect_identical(straight.summarize(), resharded.summarize());
}

TEST_F(service_test, full_ring_is_backpressure_not_loss) {
    service_params sp = serve_params(1);
    sp.queue_capacity = 4; // rounds to 4 slots
    notification_service svc(*setup_, sp);

    const auto& stream = setup_->world().notifications().per_user[0];
    ASSERT_GE(stream.size(), 6u);
    std::size_t accepted = 0, pushed_back = 0;
    for (std::size_t i = 0; i < 6; ++i) {
        const auto status = svc.ingest(stream[i]);
        if (status == ingest_status::accepted) ++accepted;
        else if (status == ingest_status::backpressure) ++pushed_back;
    }
    EXPECT_EQ(accepted, 4u);
    EXPECT_EQ(pushed_back, 2u);
    EXPECT_EQ(svc.counters().ingest_rejected_backpressure, 2u);

    // A round drains the ring; the producer's retry then goes through, so
    // backpressure never loses what the producer keeps offering.
    svc.run_round();
    for (std::size_t i = accepted; i < 6; ++i)
        EXPECT_EQ(svc.ingest(stream[i]), ingest_status::accepted);
    EXPECT_EQ(svc.counters().ingest_accepted, 6u);
}

TEST_F(service_test, duplicate_ids_are_suppressed_idempotently) {
    notification_service svc(*setup_, serve_params(2));
    const notification& n = setup_->world().notifications().per_user[3][0];
    const std::string line = richnote::core::format_wire_line(n);
    // An at-least-once wire redelivers: same line three times.
    for (int i = 0; i < 3; ++i)
        ASSERT_EQ(svc.ingest_line(line), ingest_status::accepted);
    svc.run_rounds(200); // past a week, so created_at is certainly due

    // All three were admitted, the brokers suppressed the two replays.
    EXPECT_EQ(svc.counters().admitted, 3u);
    EXPECT_EQ(svc.user_broker(3).duplicates_suppressed(), 2u);
    EXPECT_EQ(svc.summarize().faults.duplicates_suppressed, 2u);
    // And exactly one copy entered the pipeline.
    EXPECT_EQ(svc.metrics().user(3).arrived, 1u);
}

TEST_F(service_test, ingest_order_within_a_round_does_not_matter) {
    // Out-of-order timestamps on the wire: a whole workload delivered in
    // reverse (and interleaved across users) is canonicalised at the round
    // boundary, so outputs match the in-order replay bitwise.
    notification_service in_order(*setup_, serve_params(2));
    ingest_workload(in_order);
    in_order.run_rounds(40);

    notification_service reversed(*setup_, serve_params(2));
    std::vector<notification> all;
    for (const auto& stream : setup_->world().notifications().per_user)
        all.insert(all.end(), stream.begin(), stream.end());
    std::reverse(all.begin(), all.end());
    for (const notification& n : all)
        ASSERT_EQ(reversed.ingest(n), ingest_status::accepted);
    reversed.run_rounds(40);

    expect_identical(in_order.summarize(), reversed.summarize());
}

TEST_F(service_test, rejects_unknown_users_and_bad_lines) {
    service_params sp = serve_params(1);
    sp.user_count = 8; // smaller fleet than the trace
    notification_service svc(*setup_, sp);

    notification n = setup_->world().notifications().per_user[1][0];
    n.recipient = 8; // first id outside the fleet
    EXPECT_EQ(svc.ingest(n), ingest_status::unknown_user);
    std::string error;
    EXPECT_EQ(svc.ingest_line("{\"garbage\":", &error), ingest_status::parse_error);
    EXPECT_EQ(error, "bad json");
    const auto counters = svc.counters();
    EXPECT_EQ(counters.ingest_rejected_user, 1u);
    EXPECT_EQ(counters.ingest_rejected_parse, 1u);
    EXPECT_EQ(counters.ingest_accepted, 0u);
}

TEST_F(service_test, concurrent_ingest_is_race_free) {
    // Four producer threads hammer the MPSC ring while counters are read;
    // under --tsan this is the data-race proof for the ingest plane.
    notification_service svc(*setup_, serve_params(2));
    const auto& per_user = setup_->world().notifications().per_user;
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < 4; ++t) {
        producers.emplace_back([&, t] {
            for (std::size_t u = t; u < per_user.size(); u += 4) {
                for (const notification& n : per_user[u]) {
                    // Spin on backpressure: the ring is sized generously,
                    // but the test must not drop on a slow machine.
                    while (svc.ingest_line(richnote::core::format_wire_line(n)) ==
                           ingest_status::backpressure) {
                        std::this_thread::yield();
                    }
                }
            }
        });
    }
    for (auto& p : producers) p.join();

    EXPECT_EQ(svc.counters().ingest_accepted,
              setup_->world().notifications().total_count);
    svc.run_rounds(200); // past the trace horizon, so everything comes due
    EXPECT_EQ(svc.counters().admitted, setup_->world().notifications().total_count);
    EXPECT_EQ(svc.counters().pending, 0u);
}

TEST_F(service_test, lifecycle_tracking_never_changes_outputs) {
    // The zero-interference contract: attaching a lifecycle tracker (and a
    // trace sink) must leave every simulation output bit-identical.
    notification_service plain(*setup_, serve_params(2));
    ingest_workload(plain);
    plain.run_rounds(50);

    richnote::obs::lifecycle_tracker lifecycle;
    richnote::obs::trace_sink sink(setup_->world().user_count());
    service_params sp = serve_params(2);
    sp.experiment.lifecycle = &lifecycle;
    sp.experiment.trace = &sink;
    notification_service traced(*setup_, sp);
    ingest_workload(traced);
    traced.run_rounds(50);

    expect_identical(plain.summarize(), traced.summarize());

    // The tracker saw every accepted notification and accounted for each
    // one exactly once: still in flight, delivered, or dead-lettered.
    const auto c = traced.counters();
    EXPECT_GT(lifecycle.delivered(), 0u);
    EXPECT_EQ(lifecycle.tracked() + lifecycle.delivered() + lifecycle.dead_lettered(),
              c.ingest_accepted);

    richnote::obs::metrics_registry registry;
    traced.export_service_metrics(registry);
    EXPECT_EQ(registry.get_histogram("richnote.svc.e2e_us").total_count(),
              lifecycle.delivered());
    EXPECT_EQ(registry.counter("richnote.svc.ingest_accepted"), c.ingest_accepted);
}

TEST_F(service_test, lifecycle_trace_is_byte_identical_across_worker_counts) {
    // The deterministic plane: lc_ingest/lc_admit ride the trace sink's
    // merged stream, which must not depend on sharding or reruns.
    const auto trace_of = [&](std::size_t threads) {
        richnote::obs::trace_sink sink(setup_->world().user_count());
        service_params sp = serve_params(threads);
        sp.experiment.trace = &sink;
        notification_service svc(*setup_, sp);
        ingest_workload(svc);
        svc.run_rounds(40);
        std::ostringstream out;
        sink.write_ndjson(out);
        return out.str();
    };

    const std::string one = trace_of(1);
    EXPECT_NE(one.find("\"type\":\"lc_ingest\""), std::string::npos);
    EXPECT_NE(one.find("\"type\":\"lc_admit\""), std::string::npos);
    EXPECT_EQ(one, trace_of(2));
    EXPECT_EQ(one, trace_of(8));
    EXPECT_EQ(one, trace_of(2)); // rerun at the same count, same bytes

    // ...and so is the explain reconstruction built from it.
    const std::uint64_t id = setup_->world().notifications().per_user[0][0].id;
    std::ostringstream first;
    std::ostringstream second;
    {
        std::istringstream in(one);
        ASSERT_TRUE(richnote::obs::write_explain(in, id, first));
    }
    {
        std::istringstream in(trace_of(8));
        ASSERT_TRUE(richnote::obs::write_explain(in, id, second));
    }
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("ingested"), std::string::npos) << first.str();
    EXPECT_NE(first.str().find("admitted"), std::string::npos);
}

TEST_F(service_test, backpressure_abandons_the_lifecycle_stamp) {
    richnote::obs::lifecycle_tracker lifecycle;
    service_params sp = serve_params(1);
    sp.queue_capacity = 4;
    sp.experiment.lifecycle = &lifecycle;
    notification_service svc(*setup_, sp);

    const auto& stream = setup_->world().notifications().per_user[0];
    ASSERT_GE(stream.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) svc.ingest(stream[i]);
    // 4 slots: the two rejected pushes must not linger as in-flight ghosts.
    EXPECT_EQ(svc.counters().ingest_rejected_backpressure, 2u);
    EXPECT_EQ(lifecycle.tracked(), 4u);
}

TEST(service_property, wire_replay_matches_batch_across_many_seeds) {
    // 200 seeds of tiny workloads, oracle utility (no forest training):
    // for every one, total utility and delivery ratio of the wire replay
    // must equal the batch run bit-for-bit.
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        experiment_setup::options opts;
        opts.workload.user_count = 4;
        opts.workload.catalog.artist_count = 20;
        opts.workload.playlist_count = 4;
        opts.workload.horizon = 24.0 * 3600.0; // one day
        opts.oracle_utility = true;
        opts.seed = seed;
        const experiment_setup setup(opts);

        experiment_params p;
        p.kind = seed % 3 == 0 ? scheduler_kind::fifo : scheduler_kind::richnote;
        p.weekly_budget_mb = seed % 2 == 0 ? 2.0 : 10.0;
        p.seed = seed * 11;
        const experiment_result batch = run_experiment(setup, p);

        service_params sp;
        sp.experiment = p;
        sp.worker_threads = 1 + seed % 3;
        notification_service svc(setup, sp);
        for (const auto& stream : setup.world().notifications().per_user) {
            for (const notification& n : stream) {
                ASSERT_EQ(svc.ingest_line(richnote::core::format_wire_line(n)),
                          ingest_status::accepted);
            }
        }
        svc.run_rounds(batch.rounds_run);

        const experiment_result served = svc.summarize();
        ASSERT_EQ(served.total_utility, batch.total_utility) << "seed " << seed;
        ASSERT_EQ(served.delivery_ratio, batch.delivery_ratio) << "seed " << seed;
        ASSERT_EQ(served.mean_delay_min, batch.mean_delay_min) << "seed " << seed;
    }
}

} // namespace

#include "core/presentation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::pareto_prune;
using richnote::core::presentation;
using richnote::core::presentation_candidate;
using richnote::core::presentation_set;

presentation_set two_levels() {
    return presentation_set({presentation{"meta", 200.0, 0.01, 0.0},
                             presentation{"meta+5s", 100'200.0, 0.26, 5.0}});
}

TEST(presentation_set, level_zero_is_free_and_empty) {
    const auto set = two_levels();
    EXPECT_DOUBLE_EQ(set.size(0), 0.0);
    EXPECT_DOUBLE_EQ(set.utility(0), 0.0);
}

TEST(presentation_set, levels_are_one_indexed) {
    const auto set = two_levels();
    EXPECT_EQ(set.level_count(), 2u);
    EXPECT_DOUBLE_EQ(set.size(1), 200.0);
    EXPECT_DOUBLE_EQ(set.utility(2), 0.26);
    EXPECT_EQ(set.at(1).label, "meta");
}

TEST(presentation_set, total_size_sums_all_levels) {
    const auto set = two_levels();
    EXPECT_DOUBLE_EQ(set.total_size(), 100'400.0);
}

TEST(presentation_set, rejects_non_monotone_orderings) {
    EXPECT_THROW(presentation_set({presentation{"a", 100, 0.5, 0},
                                   presentation{"b", 100, 0.6, 0}}),
                 richnote::precondition_error);
    EXPECT_THROW(presentation_set({presentation{"a", 100, 0.5, 0},
                                   presentation{"b", 200, 0.5, 0}}),
                 richnote::precondition_error);
    EXPECT_THROW(presentation_set({presentation{"a", 200, 0.6, 0},
                                   presentation{"b", 100, 0.5, 0}}),
                 richnote::precondition_error);
}

TEST(presentation_set, rejects_empty_and_out_of_range) {
    EXPECT_THROW(presentation_set(std::vector<presentation>{}),
                 richnote::precondition_error);
    const auto set = two_levels();
    EXPECT_THROW(set.size(3), richnote::precondition_error);
    EXPECT_THROW(set.at(0), richnote::precondition_error);
}

// The Fig. 2(a) example: "B is not a useful presentation given A, because A
// provides the same utility for a smaller size, and similarly D provides a
// higher utility than same-sized B and C."
TEST(pareto, reproduces_figure_2a_example) {
    std::vector<presentation_candidate> candidates = {
        {"A", 100, 0.5, 0}, // small, decent utility
        {"B", 200, 0.5, 0}, // dominated by A (same utility, larger)
        {"C", 200, 0.4, 0}, // dominated by A and D
        {"D", 200, 0.7, 0}, // largest utility at its size
    };
    const auto useful = pareto_prune(std::move(candidates));
    ASSERT_EQ(useful.size(), 2u);
    EXPECT_EQ(useful[0].label, "A");
    EXPECT_EQ(useful[1].label, "D");
}

TEST(pareto, output_is_sorted_with_strictly_increasing_utility) {
    std::vector<presentation_candidate> candidates;
    for (int i = 0; i < 20; ++i) {
        candidates.push_back({"p" + std::to_string(i),
                              static_cast<double>(100 + (i * 37) % 500),
                              0.1 + 0.04 * ((i * 13) % 17), 0});
    }
    const auto useful = pareto_prune(std::move(candidates));
    for (std::size_t i = 1; i < useful.size(); ++i) {
        EXPECT_GT(useful[i].size_bytes, useful[i - 1].size_bytes);
        EXPECT_GT(useful[i].utility, useful[i - 1].utility);
    }
}

TEST(pareto, duplicates_collapse_to_one) {
    std::vector<presentation_candidate> candidates = {
        {"x", 100, 0.5, 0}, {"y", 100, 0.5, 0}};
    EXPECT_EQ(pareto_prune(std::move(candidates)).size(), 1u);
}

TEST(pareto, empty_input_is_empty_output) {
    EXPECT_TRUE(pareto_prune({}).empty());
}

audio_preview_generator paper_generator() {
    return audio_preview_generator(audio_preview_generator::params{});
}

TEST(audio_generator, produces_the_six_paper_levels) {
    const auto set = paper_generator().generate(276.0);
    // §V-C: metadata only + previews of 5/10/20/30/40 s.
    EXPECT_EQ(set.level_count(), 6u);
    EXPECT_EQ(set.at(1).label, "meta");
    EXPECT_DOUBLE_EQ(set.at(1).preview_sec, 0.0);
    EXPECT_DOUBLE_EQ(set.at(6).preview_sec, 40.0);
}

TEST(audio_generator, sizes_match_paper_arithmetic) {
    // §V-C: "At 160kbps bitrate, the size of a d-sec preview is d x 20KB",
    // plus 200 B of metadata.
    const auto set = paper_generator().generate(276.0);
    EXPECT_DOUBLE_EQ(set.size(1), 200.0);
    EXPECT_DOUBLE_EQ(set.size(2), 200.0 + 5.0 * 20'000.0);
    EXPECT_DOUBLE_EQ(set.size(6), 200.0 + 40.0 * 20'000.0);
}

TEST(audio_generator, metadata_carries_one_percent_utility) {
    const auto set = paper_generator().generate(276.0);
    EXPECT_DOUBLE_EQ(set.utility(1), 0.01);
    EXPECT_DOUBLE_EQ(set.utility(6), 1.0); // longest preview normalizes to 1
}

TEST(audio_generator, utilities_follow_equation_8_shape) {
    const auto set = paper_generator().generate(276.0);
    // Diminishing returns: utility gain per added level shrinks relative to
    // the size gain (the gradient decreases).
    double prev_gradient = 1e18;
    for (richnote::core::level_t j = 1; j < 6; ++j) {
        const double gradient =
            (set.utility(j + 1) - set.utility(j)) / (set.size(j + 1) - set.size(j));
        EXPECT_LT(gradient, prev_gradient);
        prev_gradient = gradient;
    }
}

TEST(audio_generator, short_tracks_clip_previews) {
    // A 12-second track cannot carry a 20/30/40 s preview; clipped
    // duplicates must be pruned away.
    const auto set = paper_generator().generate(12.0);
    EXPECT_LT(set.level_count(), 6u);
    for (richnote::core::level_t j = 1; j <= set.level_count(); ++j)
        EXPECT_LE(set.at(j).preview_sec, 12.0);
}

TEST(audio_generator, preview_utility_is_monotone_in_duration) {
    const auto gen = paper_generator();
    EXPECT_LT(gen.preview_utility(5), gen.preview_utility(10));
    EXPECT_LT(gen.preview_utility(10), gen.preview_utility(40));
    EXPECT_LE(gen.preview_utility(40), 1.0);
}

TEST(audio_generator, rejects_bad_params) {
    audio_preview_generator::params p;
    p.metadata_utility_fraction = 0.0;
    EXPECT_THROW(audio_preview_generator{p}, richnote::precondition_error);
    p = audio_preview_generator::params{};
    p.preview_durations_sec.clear();
    EXPECT_THROW(audio_preview_generator{p}, richnote::precondition_error);
    p = audio_preview_generator::params{};
    p.bitrate_kbps = 0;
    EXPECT_THROW(audio_preview_generator{p}, richnote::precondition_error);
}

} // namespace

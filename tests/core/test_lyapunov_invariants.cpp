// Lyapunov control invariants (§IV) verified three ways: directly on the
// controller under random operation sequences, end-to-end on telemetry
// trajectories from a full replay, and against the structured decision
// trace — whose Eq. 7 terms must reconstruct the adjusted utility the MCKP
// maximized, bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/lyapunov.hpp"
#include "obs/trace_sink.hpp"
#include "sim/time.hpp"

namespace {

using richnote::rng;
using richnote::core::experiment_params;
using richnote::core::experiment_setup;
using richnote::core::lyapunov_controller;
using richnote::core::lyapunov_params;
using richnote::core::run_experiment;
using richnote::obs::trace_sink;

/// Extracts a numeric field from one NDJSON event line. The emitters write
/// %.17g, so strtod round-trips the exact double.
double field_of(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto pos = json.find(needle);
    EXPECT_NE(pos, std::string::npos) << "missing " << key << " in " << json;
    if (pos == std::string::npos) return 0.0;
    return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

bool is_type(const std::string& json, const std::string& type) {
    return json.find("\"type\":\"" + type + "\"") != std::string::npos;
}

// --- 1. Controller-level invariants under random op sequences ----------

TEST(lyapunov_invariants, queues_stay_non_negative_under_random_ops) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        rng gen(seed);
        lyapunov_params params;
        params.kappa = gen.uniform(0.0, 5000.0);
        params.initial_energy_credit = gen.uniform(0.0, 5000.0);
        lyapunov_controller ctl(params);
        for (int step = 0; step < 200; ++step) {
            const double p_before = ctl.energy_credit();
            switch (gen.uniform_int(0, 2)) {
            case 0: ctl.on_enqueue(gen.uniform(0.0, 1e6)); break;
            case 1:
                // Departures larger than the backlog must floor at zero
                // (the [.]^+ in Eqs. 4-5), never go negative.
                ctl.on_departure(gen.uniform(0.0, 2e6), gen.uniform(0.0, 8000.0));
                break;
            case 2: {
                const double replenish = gen.uniform(0.0, 4000.0);
                ctl.on_round(replenish);
                // Algorithm 2 step 2: credit is only added while P <= kappa.
                if (p_before > params.kappa) {
                    EXPECT_DOUBLE_EQ(ctl.energy_credit(), p_before);
                }
                break;
            }
            }
            ASSERT_GE(ctl.queue_backlog(), 0.0) << "seed " << seed;
            ASSERT_GE(ctl.energy_credit(), 0.0) << "seed " << seed;
        }
    }
}

// --- 2/3/4. End-to-end invariants over one small replay ----------------

class lyapunov_replay : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        experiment_setup::options opts;
        opts.workload.user_count = 20;
        opts.forest.tree_count = 5;
        opts.seed = 3;
        setup_ = new experiment_setup(opts);

        sink_ = new trace_sink(20);
        experiment_params params;
        params.weekly_budget_mb = 5.0;
        params.seed = 7;
        params.trace = sink_;
        for (std::uint32_t u = 0; u < 20; ++u) params.telemetry_users.push_back(u);
        result_ = new richnote::core::experiment_result(run_experiment(*setup_, params));
    }

    static void TearDownTestSuite() {
        delete result_;
        delete sink_;
        delete setup_;
        result_ = nullptr;
        sink_ = nullptr;
        setup_ = nullptr;
    }

    static experiment_setup* setup_;
    static trace_sink* sink_;
    static richnote::core::experiment_result* result_;
};

experiment_setup* lyapunov_replay::setup_ = nullptr;
trace_sink* lyapunov_replay::sink_ = nullptr;
richnote::core::experiment_result* lyapunov_replay::result_ = nullptr;

TEST_F(lyapunov_replay, control_state_stays_non_negative_and_budget_bounded) {
    const double weekly_bytes = 5.0 * 1e6;
    const double theta =
        weekly_bytes / (richnote::sim::weeks / richnote::sim::default_round);
    ASSERT_TRUE(result_->trajectories != nullptr);
    const auto samples = result_->trajectories->samples();
    ASSERT_FALSE(samples.empty());
    for (const auto& s : samples) {
        ASSERT_GE(s.queue_bytes, 0.0) << "round " << s.round << " user " << s.user;
        ASSERT_GE(s.energy_credit, 0.0) << "round " << s.round << " user " << s.user;
        ASSERT_GE(s.data_budget, 0.0) << "round " << s.round << " user " << s.user;
        // Rollover is capped at rollover_rounds (default 168 = a full week)
        // worth of theta, so B(t) never exceeds one weekly budget.
        ASSERT_LE(s.data_budget, weekly_bytes + 1e-6)
            << "round " << s.round << " user " << s.user;
    }
    // Per-user, per-round budget conservation: B can grow by at most theta
    // between consecutive samples (replenishment), and any decrease is real
    // metered spend — it can never be manufactured.
    for (std::uint32_t u = 0; u < 20; ++u) {
        const auto& rows = result_->trajectories->of(u);
        for (std::size_t i = 1; i < rows.size(); ++i) {
            ASSERT_LE(rows[i].data_budget, rows[i - 1].data_budget + theta + 1e-6)
                << "round " << rows[i].round << " user " << u;
        }
    }
}

TEST_F(lyapunov_replay, metered_bytes_never_exceed_granted_budget) {
    // weekly_budget_mb is granted PER USER (each broker meters its own
    // subscriber's plan), the run spans one week, and budget accrues as
    // theta per round — so total metered traffic across the fleet is
    // bounded by users × weekly grant.
    EXPECT_LE(result_->metered_mb, 5.0 * 20 * (1.0 + 1e-9));
    EXPECT_GT(result_->rounds_run, 0u);
}

TEST_F(lyapunov_replay, decision_terms_reconstruct_adjusted_utility) {
    std::size_t decisions = 0;
    std::size_t plans = 0;
    for (std::uint32_t u = 0; u < 20; ++u) {
        double plan_total = 0.0;
        double decision_sum = 0.0;
        bool in_plan = false;
        for (const auto& e : sink_->events_of(u)) {
            if (is_type(e.json, "plan")) {
                if (in_plan) {
                    EXPECT_NEAR(decision_sum, plan_total,
                                1e-6 * std::max(1.0, std::abs(plan_total)))
                        << "user " << u;
                }
                plan_total = field_of(e.json, "adjusted_total");
                decision_sum = 0.0;
                in_plan = true;
                ++plans;
                EXPECT_GE(field_of(e.json, "q_bytes"), 0.0);
                EXPECT_GE(field_of(e.json, "p_joules"), 0.0);
            } else if (is_type(e.json, "decision")) {
                ASSERT_TRUE(in_plan) << "decision before any plan for user " << u;
                const double term_queue = field_of(e.json, "term_queue");
                const double term_energy = field_of(e.json, "term_energy");
                const double term_value = field_of(e.json, "term_value");
                const double adjusted = field_of(e.json, "adjusted");
                // Same operations in the same order as the instance build:
                // the terms must reconstruct the solver's objective exactly.
                EXPECT_EQ(term_queue + term_energy + term_value, adjusted)
                    << "user " << u << ": " << e.json;
                decision_sum += adjusted;
                ++decisions;
            }
        }
        if (in_plan) {
            EXPECT_NEAR(decision_sum, plan_total,
                        1e-6 * std::max(1.0, std::abs(plan_total)))
                << "user " << u;
        }
    }
    // The replay actually exercised the path under test.
    EXPECT_GT(plans, 0u);
    EXPECT_GT(decisions, 0u);
}

} // namespace

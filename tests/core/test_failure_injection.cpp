// Failure-injection tests: the system must degrade predictably — not crash,
// not violate invariants — when the environment turns hostile (no
// connectivity, dead battery, starved budgets, oversized content).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/broker.hpp"
#include "core/metrics.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "core/utility.hpp"
#include "energy/model.hpp"
#include "trace/catalog.hpp"

namespace {

using namespace richnote;
namespace t = richnote::sim;

class failure_injection : public ::testing::Test {
protected:
    failure_injection()
        : generator_(core::audio_preview_generator::params{}),
          utility_(0.5),
          metrics_(1, 6) {
        trace::catalog_params cp;
        cp.artist_count = 10;
        rng gen(1);
        catalog_ = std::make_unique<trace::catalog>(cp, gen);
    }

    core::broker make_broker(t::net_state fixed_state, double theta,
                             double battery_level = 0.9,
                             core::broker_params* custom = nullptr) {
        core::broker_params bp;
        if (custom) bp = *custom;
        bp.budget_per_round_bytes = theta;
        rng bat_gen(7);
        t::battery_params batp;
        batp.phase_jitter_hours = 0;
        batp.initial_level = battery_level;
        // Keep the battery from recharging mid-test.
        batp.charge_start_hour = 25.0;
        batp.charge_end_hour = 25.0;
        auto battery = std::make_unique<t::battery_model>(batp, bat_gen);
        return core::broker(0, bp,
                            std::make_unique<core::richnote_scheduler>(
                                core::richnote_scheduler::params{}, energy_),
                            generator_, utility_, energy_,
                            t::markov_network_model::fixed(fixed_state),
                            std::move(battery), *catalog_, metrics_, 99);
    }

    trace::notification make_note(std::uint64_t id, double created_at = 0.0) {
        trace::notification n;
        n.id = id;
        n.recipient = 0;
        n.track = 0;
        n.created_at = created_at;
        n.features.social_tie = 0.5;
        return n;
    }

    core::audio_preview_generator generator_;
    core::constant_content_utility utility_;
    energy::energy_model energy_;
    std::unique_ptr<trace::catalog> catalog_;
    core::metrics_recorder metrics_;
};

TEST_F(failure_injection, permanent_outage_queues_everything) {
    auto broker = make_broker(t::net_state::off, 1e6);
    rng gen(1);
    for (int round = 0; round < 48; ++round) {
        broker.admit(make_note(static_cast<std::uint64_t>(round),
                               round * t::hours));
        broker.run_round(round * t::hours);
    }
    EXPECT_EQ(broker.sched().queue_size(), 48u);
    EXPECT_DOUBLE_EQ(metrics_.total_delivered(), 0.0);
    EXPECT_DOUBLE_EQ(metrics_.total_energy_joules(), 0.0);
}

TEST_F(failure_injection, recovery_after_outage_drains_the_backlog) {
    // Same broker object cannot switch its fixed network model, so emulate
    // an outage via zero budget, then restore it: the backlog must drain.
    auto broker = make_broker(t::net_state::cell, 0.0);
    rng gen(1);
    for (int round = 0; round < 10; ++round) {
        broker.admit(make_note(static_cast<std::uint64_t>(round), round * t::hours));
        broker.run_round(round * t::hours);
    }
    EXPECT_EQ(broker.sched().queue_size(), 10u);

    auto recovered = make_broker(t::net_state::cell, 5e6);
    for (int round = 0; round < 10; ++round)
        recovered.admit(make_note(100 + static_cast<std::uint64_t>(round), 0.0));
    recovered.run_round(0.0);
    EXPECT_EQ(recovered.sched().queue_size(), 0u);
}

TEST_F(failure_injection, dead_battery_stops_richnote_deliveries_eventually) {
    // Battery below the policy cutoff: e(t) = 0, so P(t) is never
    // replenished; after the initial credit is spent, deliveries stop.
    auto broker = make_broker(t::net_state::cell, 1e9, /*battery_level=*/0.05);
    rng gen(1);
    for (int round = 0; round < 200; ++round) {
        broker.admit(make_note(static_cast<std::uint64_t>(round), round * t::hours));
        broker.run_round(round * t::hours);
    }
    // The initial 3 KJ credit covers many small transfers but is finite:
    // far fewer than the 200 offered items are delivered, and total energy
    // is bounded by the initial credit (plus one overshoot).
    EXPECT_LT(metrics_.total_delivered(), 200.0);
    EXPECT_LE(metrics_.total_energy_joules(), 3000.0 + 50.0);
    EXPECT_GT(broker.sched().queue_size(), 0u);
}

TEST_F(failure_injection, zero_link_capacity_behaves_like_outage) {
    // A connected link with zero capacity (e.g. congestion collapse):
    // plans must be empty rather than dividing by zero.
    core::richnote_scheduler sched(core::richnote_scheduler::params{}, energy_);
    core::sched_item item;
    item.note.id = 1;
    item.content_utility = 0.5;
    item.presentations = generator_.generate(276.0);
    sched.enqueue(std::move(item));
    core::round_context ctx;
    ctx.data_budget_bytes = 1e9;
    ctx.network = t::net_state::cell;
    ctx.metered = true;
    ctx.link_capacity_bytes = 0.0;
    ctx.energy_replenishment = 3000.0;
    EXPECT_TRUE(sched.plan(ctx).empty());
}

TEST_F(failure_injection, burst_arrival_stays_stable) {
    // A thundering herd of arrivals in one round must neither crash nor
    // break queue accounting; the backlog drains over subsequent rounds.
    auto broker = make_broker(t::net_state::cell, 2e6);
    rng gen(1);
    for (std::uint64_t id = 0; id < 500; ++id) broker.admit(make_note(id, 0.0));
    const std::size_t initial = broker.sched().queue_size();
    EXPECT_EQ(initial, 500u);
    std::size_t previous = initial;
    for (int round = 0; round < 24; ++round) {
        broker.run_round(round * t::hours);
        EXPECT_LE(broker.sched().queue_size(), previous);
        previous = broker.sched().queue_size();
    }
    EXPECT_LT(previous, 500u);
}

TEST_F(failure_injection, items_larger_than_any_budget_park_harmlessly) {
    // An item whose SMALLEST presentation exceeds theta forever: FIFO
    // blocks on it (head of line), but the system keeps running.
    core::broker_params bp;
    bp.rollover_rounds = 1.0; // no banking: budget is always exactly theta
    auto broker = make_broker(t::net_state::cell, 100.0, 0.9, &bp);
    rng gen(1);
    broker.admit(make_note(1, 0.0));
    for (int round = 0; round < 10; ++round) broker.run_round(round * t::hours);
    // Only the 200 B metadata presentation fits in theta = 100 B? It does
    // not — so nothing is ever delivered, and nothing crashes.
    EXPECT_DOUBLE_EQ(metrics_.total_delivered(), 0.0);
    EXPECT_EQ(broker.sched().queue_size(), 1u);
}

} // namespace

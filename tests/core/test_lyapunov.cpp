#include "core/lyapunov.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::core::lyapunov_controller;
using richnote::core::lyapunov_params;

lyapunov_params raw_units() {
    lyapunov_params p;
    p.queue_unit_bytes = 1.0;
    p.energy_unit_joules = 1.0;
    return p;
}

TEST(lyapunov, initial_state) {
    lyapunov_controller c;
    EXPECT_DOUBLE_EQ(c.queue_backlog(), 0.0);
    EXPECT_DOUBLE_EQ(c.energy_credit(), 3000.0);
}

TEST(lyapunov, enqueue_grows_backlog) {
    lyapunov_controller c;
    c.on_enqueue(100.0);
    c.on_enqueue(50.0);
    EXPECT_DOUBLE_EQ(c.queue_backlog(), 150.0);
}

TEST(lyapunov, departure_shrinks_backlog_and_credit) {
    lyapunov_controller c;
    c.on_enqueue(500.0);
    c.on_departure(200.0, 1000.0);
    EXPECT_DOUBLE_EQ(c.queue_backlog(), 300.0);
    EXPECT_DOUBLE_EQ(c.energy_credit(), 2000.0);
}

TEST(lyapunov, queues_floor_at_zero) {
    // The [.]^+ operator of Eqs. 4-5.
    lyapunov_controller c;
    c.on_enqueue(100.0);
    c.on_departure(1e9, 1e9);
    EXPECT_DOUBLE_EQ(c.queue_backlog(), 0.0);
    EXPECT_DOUBLE_EQ(c.energy_credit(), 0.0);
}

TEST(lyapunov, replenishment_is_gated_by_kappa) {
    // Algorithm 2 step 2: "add e(t) to P(t) if P(t) <= kappa".
    lyapunov_params p;
    p.kappa = 3000.0;
    p.initial_energy_credit = 3000.0;
    lyapunov_controller c(p);
    c.on_round(500.0); // P == kappa: still allowed to add
    EXPECT_DOUBLE_EQ(c.energy_credit(), 3500.0);
    c.on_round(500.0); // P > kappa now: no replenishment
    EXPECT_DOUBLE_EQ(c.energy_credit(), 3500.0);
    c.on_departure(0.0, 1000.0);
    c.on_round(500.0); // back below kappa
    EXPECT_DOUBLE_EQ(c.energy_credit(), 3000.0);
}

TEST(lyapunov, adjusted_utility_matches_equation_7) {
    lyapunov_params p = raw_units();
    p.v = 100.0;
    p.kappa = 10.0;
    p.initial_energy_credit = 25.0;
    lyapunov_controller c(p);
    c.on_enqueue(7.0);
    // U_a = Q*s + (P - kappa)*rho + V*U = 7*3 + (25-10)*2 + 100*0.5 = 101.
    EXPECT_DOUBLE_EQ(c.adjusted_utility(3.0, 2.0, 0.5), 101.0);
}

TEST(lyapunov, adjusted_utility_penalizes_energy_when_credit_is_low) {
    lyapunov_params p = raw_units();
    p.v = 1.0;
    p.kappa = 100.0;
    p.initial_energy_credit = 0.0;
    lyapunov_controller c(p);
    // P - kappa = -100: energy-hungry presentations score lower.
    EXPECT_LT(c.adjusted_utility(0.0, 10.0, 0.5), c.adjusted_utility(0.0, 1.0, 0.5));
}

TEST(lyapunov, adjusted_utility_rewards_backlogged_items) {
    lyapunov_params p = raw_units();
    lyapunov_controller c(p);
    c.on_enqueue(1000.0);
    // Bigger item_total_size -> bigger queue-drain reward.
    EXPECT_GT(c.adjusted_utility(100.0, 0.0, 0.1), c.adjusted_utility(1.0, 0.0, 0.1));
}

TEST(lyapunov, unit_scaling_divides_quadratic_terms) {
    lyapunov_params scaled;
    scaled.v = 1.0;
    scaled.kappa = 0.0;
    scaled.initial_energy_credit = 0.0;
    scaled.queue_unit_bytes = 10.0;
    scaled.energy_unit_joules = 100.0;
    lyapunov_controller c(scaled);
    c.on_enqueue(100.0);
    c.on_departure(0.0, 0.0);
    c.on_round(200.0);
    // qs = (100/10)*(50/10) = 50; pe = (200/100)*(300/100) = 6; V*U = 1.
    EXPECT_DOUBLE_EQ(c.adjusted_utility(50.0, 300.0, 1.0), 50.0 + 6.0 + 1.0);
}

TEST(lyapunov, lyapunov_function_value) {
    lyapunov_params p = raw_units();
    p.kappa = 10.0;
    p.initial_energy_credit = 4.0;
    lyapunov_controller c(p);
    c.on_enqueue(3.0);
    // L = 1/2 (Q^2 + (P-kappa)^2) = 1/2 (9 + 36) = 22.5.
    EXPECT_DOUBLE_EQ(c.lyapunov_value(), 22.5);
}

TEST(lyapunov, rejects_invalid_parameters_and_inputs) {
    lyapunov_params p;
    p.v = 0.0;
    EXPECT_THROW(lyapunov_controller{p}, richnote::precondition_error);
    p = lyapunov_params{};
    p.kappa = -1.0;
    EXPECT_THROW(lyapunov_controller{p}, richnote::precondition_error);

    lyapunov_controller c;
    EXPECT_THROW(c.on_enqueue(-1.0), richnote::precondition_error);
    EXPECT_THROW(c.on_departure(-1.0, 0.0), richnote::precondition_error);
    EXPECT_THROW(c.on_round(-1.0), richnote::precondition_error);
}

/// Stability property (the point of the framework): with arrivals bounded
/// below the service capacity, simulating the queue updates keeps Q(t)
/// bounded instead of drifting to infinity.
TEST(lyapunov, queue_stays_bounded_under_subcritical_load) {
    richnote::rng gen(3);
    lyapunov_controller c;
    double max_q = 0.0;
    for (int round = 0; round < 5000; ++round) {
        c.on_enqueue(gen.uniform(0, 100));          // nu(t) <= 100
        c.on_departure(std::min(c.queue_backlog(), 80.0), 0.0); // serve up to 80
        // E[nu] = 50 < 80: subcritical.
        max_q = std::max(max_q, c.queue_backlog());
    }
    EXPECT_LT(max_q, 500.0);
}

/// P(t) oscillates around kappa when replenishment and spending balance.
TEST(lyapunov, energy_credit_tracks_kappa) {
    richnote::rng gen(5);
    lyapunov_params p;
    p.kappa = 1000.0;
    p.initial_energy_credit = 0.0;
    lyapunov_controller c(p);
    for (int round = 0; round < 1000; ++round) {
        c.on_round(300.0);
        c.on_departure(0.0, gen.uniform(0, 400.0));
    }
    EXPECT_GT(c.energy_credit(), 0.0);
    EXPECT_LT(c.energy_credit(), 2.0 * p.kappa);
}

} // namespace

#include "core/utility.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::core::cached_content_utility;
using richnote::core::combined_utility;
using richnote::core::constant_content_utility;
using richnote::core::forest_content_utility;
using richnote::core::make_training_set;
using richnote::core::oracle_content_utility;
using richnote::core::train_content_utility;

richnote::trace::workload_params tiny_world() {
    richnote::trace::workload_params p;
    p.user_count = 40;
    p.catalog.artist_count = 60;
    p.playlist_count = 10;
    p.horizon = 3.0 * richnote::sim::days;
    return p;
}

TEST(combined, equation_1_is_a_product) {
    EXPECT_DOUBLE_EQ(combined_utility(0.5, 0.4), 0.2);
    EXPECT_DOUBLE_EQ(combined_utility(0.0, 1.0), 0.0);
}

TEST(constant_model, returns_its_value_and_validates_range) {
    const constant_content_utility model(0.7);
    EXPECT_DOUBLE_EQ(model.content_utility({}), 0.7);
    EXPECT_THROW(constant_content_utility{1.5}, richnote::precondition_error);
    EXPECT_THROW(constant_content_utility{-0.1}, richnote::precondition_error);
}

TEST(training_set, filters_unattended_notifications) {
    const richnote::trace::workload world(tiny_world(), 3);
    const auto data = make_training_set(world.notifications());
    // §V-A: "First we filter out notifications without corresponding mouse
    // activity" — rows equal attended count, positives equal clicks.
    EXPECT_EQ(data.size(), world.notifications().attended_count);
    EXPECT_NEAR(data.positive_fraction() *
                    static_cast<double>(world.notifications().attended_count),
                static_cast<double>(world.notifications().clicked_count), 0.5);
    EXPECT_EQ(data.feature_count(), richnote::trace::notification_features::dimension);
}

TEST(oracle_model, returns_latent_click_probability) {
    const richnote::trace::workload world(tiny_world(), 5);
    const oracle_content_utility oracle(world.clicks());
    const auto& stream = world.notifications().per_user[0];
    ASSERT_FALSE(stream.empty());
    const auto& n = stream.front();
    EXPECT_DOUBLE_EQ(oracle.content_utility(n),
                     world.clicks().click_probability(n.recipient, n.features));
}

TEST(forest_model, utilities_are_probabilities) {
    const richnote::trace::workload world(tiny_world(), 7);
    richnote::ml::forest_params params;
    params.tree_count = 10;
    const auto model = train_content_utility(world.notifications(), params, 1);
    for (const auto& stream : world.notifications().per_user) {
        for (const auto& n : stream) {
            const double u = model->content_utility(n);
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 1.0);
        }
    }
}

TEST(forest_model, correlates_with_oracle) {
    const richnote::trace::workload world(tiny_world(), 9);
    richnote::ml::forest_params params;
    params.tree_count = 20;
    const auto learned = train_content_utility(world.notifications(), params, 2);
    const oracle_content_utility oracle(world.clicks());

    std::vector<double> predicted, truth;
    for (const auto& stream : world.notifications().per_user) {
        for (const auto& n : stream) {
            predicted.push_back(learned->content_utility(n));
            truth.push_back(oracle.content_utility(n));
        }
    }
    EXPECT_GT(richnote::pearson(predicted, truth), 0.3);
}

TEST(forest_model, rejects_untrained_forest) {
    EXPECT_THROW(forest_content_utility{nullptr}, richnote::precondition_error);
    EXPECT_THROW(forest_content_utility{std::make_shared<richnote::ml::random_forest>()},
                 richnote::precondition_error);
}

TEST(cached_model, matches_wrapped_model_for_every_notification) {
    const richnote::trace::workload world(tiny_world(), 11);
    const constant_content_utility base(0.42);
    const cached_content_utility cached(world.notifications(), base);
    EXPECT_EQ(cached.size(), world.notifications().total_count);
    for (const auto& stream : world.notifications().per_user)
        for (const auto& n : stream)
            EXPECT_DOUBLE_EQ(cached.content_utility(n), 0.42);
}

TEST(cached_model, rejects_foreign_notifications) {
    const richnote::trace::workload world(tiny_world(), 13);
    const constant_content_utility base(0.5);
    const cached_content_utility cached(world.notifications(), base);
    richnote::trace::notification foreign;
    foreign.id = world.notifications().total_count + 10;
    EXPECT_THROW(cached.content_utility(foreign), richnote::precondition_error);
}

} // namespace

// Resilient delivery pipeline at the broker level: idempotent admission,
// byte-level partial-transfer accounting with resume from the high-water
// mark, the legacy all-or-nothing flag, and lossless crash-restart
// recovery from checkpoints.
#include "core/broker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "core/utility.hpp"
#include "faults/fault_plan.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::broker;
using richnote::core::broker_params;
using richnote::core::constant_content_utility;
using richnote::core::fifo_scheduler;
using richnote::core::metrics_recorder;
using richnote::core::richnote_scheduler;
using richnote::faults::fault_plan;
using richnote::faults::fault_plan_params;
namespace t = richnote::sim;

class broker_resilience : public ::testing::Test {
protected:
    broker_resilience() : generator_(audio_preview_generator::params{}), utility_(0.5) {
        richnote::trace::catalog_params cp;
        cp.artist_count = 20;
        richnote::rng cat_gen(3);
        catalog_ = std::make_unique<richnote::trace::catalog>(cp, cat_gen);
    }

    broker make_broker(metrics_recorder& metrics, double theta_bytes,
                       const broker_params* base = nullptr,
                       std::unique_ptr<richnote::core::scheduler> sched = nullptr) {
        broker_params bp = base ? *base : broker_params{};
        bp.budget_per_round_bytes = theta_bytes;
        if (!sched) sched = std::make_unique<fifo_scheduler>(3, energy_);
        richnote::rng bat_gen(7);
        t::battery_params batp;
        batp.phase_jitter_hours = 0;
        auto battery = std::make_unique<t::battery_model>(batp, bat_gen);
        return broker(0, bp, std::move(sched), generator_, utility_, energy_,
                      t::markov_network_model::fixed(t::net_state::cell),
                      std::move(battery), *catalog_, metrics, 99);
    }

    richnote::trace::notification make_note(std::uint64_t id, double created_at = 0.0) {
        richnote::trace::notification n;
        n.id = id;
        n.recipient = 0;
        n.track = 0;
        n.created_at = created_at;
        n.features.social_tie = 0.5;
        return n;
    }

    audio_preview_generator generator_;
    constant_content_utility utility_;
    richnote::energy::energy_model energy_;
    std::unique_ptr<richnote::trace::catalog> catalog_;
};

// ------------------------------------------- idempotent admission ----

TEST_F(broker_resilience, duplicate_admissions_are_suppressed_and_counted) {
    metrics_recorder metrics(1, 6);
    auto b = make_broker(metrics, 1e6);
    const auto n = make_note(1);
    b.admit(n);
    b.admit(n); // at-least-once replay of the same publish
    b.admit(n);

    EXPECT_EQ(b.sched().queue_size(), 1u);
    EXPECT_EQ(b.duplicates_suppressed(), 2u);
    EXPECT_DOUBLE_EQ(metrics.total_arrived(), 1.0);
    EXPECT_EQ(metrics.user(0).faults.duplicates_suppressed, 2u);

    // The item delivers exactly once despite the replays.
    b.run_round(0.0);
    EXPECT_DOUBLE_EQ(metrics.total_delivered(), 1.0);
}

TEST_F(broker_resilience, duplicate_suppression_survives_delivery) {
    // A replay arriving AFTER the item was delivered must not re-deliver.
    metrics_recorder metrics(1, 6);
    auto b = make_broker(metrics, 1e6);
    b.admit(make_note(1));
    b.run_round(0.0);
    ASSERT_DOUBLE_EQ(metrics.total_delivered(), 1.0);

    b.admit(make_note(1));
    EXPECT_EQ(b.sched().queue_size(), 0u);
    EXPECT_EQ(b.duplicates_suppressed(), 1u);
    b.run_round(t::default_round);
    EXPECT_DOUBLE_EQ(metrics.total_delivered(), 1.0);
}

// ------------------------------ byte-level partial-transfer accounting ----

TEST_F(broker_resilience, interrupted_transfers_charge_only_moved_bytes) {
    // Every attempt cuts mid-flight (fraction < 1 always): the item never
    // delivers, but the total budget spent converges to at most one item
    // size instead of burning a full size per attempt.
    fault_plan_params fp;
    fp.seed = 5;
    fp.partial_transfer_prob = 1.0;
    fp.min_transfer_fraction = 0.25;
    const fault_plan plan(fp);

    metrics_recorder metrics(1, 6);
    broker_params bp;
    bp.faults = &plan;
    const double theta = 300'000.0;
    auto b = make_broker(metrics, theta, &bp);
    b.admit(make_note(1));

    const int rounds = 12;
    for (int r = 0; r < rounds; ++r) b.run_round(r * t::default_round);

    EXPECT_DOUBLE_EQ(metrics.total_delivered(), 0.0);
    EXPECT_EQ(b.sched().queue_size(), 1u);
    EXPECT_GT(b.failed_transfers(), 0u);

    const double spent = metrics.user(0).faults.partial_bytes;
    ASSERT_EQ(b.partial_progress().size(), 1u);
    const double high_water = b.partial_progress().begin()->second;
    // All interrupted attempts together moved exactly the high-water mark.
    EXPECT_NEAR(spent, high_water, 1e-6);
    // Budget accounting matches bytes moved: rollover cap never bites at
    // this theta, so budget = theta * rounds - moved.
    EXPECT_NEAR(b.data_budget(), theta * rounds - spent, 1e-6);
    // Far less than the all-or-nothing burn of one full size per attempt.
    EXPECT_LT(spent, 250'000.0);
}

TEST_F(broker_resilience, legacy_flag_burns_the_full_size_per_attempt) {
    metrics_recorder metrics(1, 6);
    broker_params bp;
    bp.legacy_failure_accounting = true;
    bp.transfer_failure_prob = 1.0; // every transfer drops
    const double theta = 300'000.0;
    auto b = make_broker(metrics, theta, &bp);
    b.admit(make_note(1));

    const int rounds = 5;
    for (int r = 0; r < rounds; ++r) b.run_round(r * t::default_round);

    EXPECT_DOUBLE_EQ(metrics.total_delivered(), 0.0);
    EXPECT_EQ(b.failed_transfers(), static_cast<std::uint64_t>(rounds));
    EXPECT_TRUE(b.partial_progress().empty()) << "legacy mode is not resumable";
    // Each attempt burned one full L3 size (~200 KB >> what partial
    // accounting would have spent by round 5).
    const double spent = theta * rounds - b.data_budget();
    EXPECT_GT(spent, 4 * 200'000.0);
}

TEST_F(broker_resilience, legacy_flag_rejects_a_fault_plan) {
    const fault_plan plan(fault_plan_params{.seed = 1, .partial_transfer_prob = 0.5});
    metrics_recorder metrics(1, 6);
    broker_params bp;
    bp.legacy_failure_accounting = true;
    bp.faults = &plan;
    EXPECT_THROW(make_broker(metrics, 1e6, &bp), richnote::precondition_error);
}

TEST_F(broker_resilience, resumed_transfer_completes_from_the_high_water_mark) {
    // Attempts cut with probability 1/2: the transfer eventually completes,
    // and the bytes salvaged from interrupted attempts are exactly the
    // resumed bytes (nothing was re-downloaded). Probe for a seed whose
    // very first attempt (round 0, item 1) cuts, so a resume is guaranteed.
    fault_plan_params fp;
    fp.partial_transfer_prob = 0.5;
    fp.min_transfer_fraction = 0.3;
    for (fp.seed = 1; fault_plan(fp).transfer_fraction(0, 0, 1) >= 1.0; ++fp.seed)
        ASSERT_LT(fp.seed, 100u) << "no cutting seed found";
    const fault_plan plan(fp);

    metrics_recorder metrics(1, 6);
    broker_params bp;
    bp.faults = &plan;
    auto b = make_broker(metrics, 1e6, &bp);
    b.admit(make_note(1));

    int r = 0;
    for (; r < 100 && metrics.total_delivered() < 1.0; ++r)
        b.run_round(r * t::default_round);

    ASSERT_DOUBLE_EQ(metrics.total_delivered(), 1.0) << "did not complete in " << r
                                                     << " rounds";
    const auto& u = metrics.user(0);
    EXPECT_GT(u.faults.transfer_retries, 0u) << "seed should produce at least one cut";
    EXPECT_NEAR(u.faults.resumed_bytes, u.faults.partial_bytes, 1e-9)
        << "every partial byte must be salvaged, none re-downloaded";

    // Total bytes across the link = exactly what a fault-free broker moves
    // for the same item: resume never re-downloads a byte.
    metrics_recorder ref_metrics(1, 6);
    auto ref = make_broker(ref_metrics, 1e6);
    ref.admit(make_note(1));
    ref.run_round(0.0);
    ASSERT_DOUBLE_EQ(ref_metrics.total_delivered(), 1.0);
    const double total_moved = u.faults.partial_bytes + u.bytes_delivered;
    EXPECT_NEAR(total_moved, ref_metrics.user(0).bytes_delivered, 1e-6);
    EXPECT_TRUE(b.partial_progress().empty());
    EXPECT_EQ(b.sched().queue_size(), 0u);
}

// --------------------------------------------- crash-restart recovery ----

TEST_F(broker_resilience, crash_restart_is_lossless) {
    // Two brokers, identical construction; one crash-restarts after every
    // round. Every observable must match exactly at the end.
    metrics_recorder metrics_a(1, 6);
    metrics_recorder metrics_b(1, 6);
    broker_params bp;
    bp.transfer_failure_prob = 0.3; // exercise the env RNG stream too
    auto a = make_broker(metrics_a, 100'000.0, &bp);
    auto b = make_broker(metrics_b, 100'000.0, &bp);

    for (int r = 0; r < 30; ++r) {
        const auto id = static_cast<std::uint64_t>(r);
        const double now = r * t::default_round;
        a.admit(make_note(id, now));
        b.admit(make_note(id, now));
        a.run_round(now);
        b.run_round(now);
        b.crash_restart();
    }

    EXPECT_EQ(b.crash_restarts(), 30u);
    EXPECT_NEAR(a.data_budget(), b.data_budget(), 1e-9);
    EXPECT_EQ(a.sched().queue_size(), b.sched().queue_size());
    EXPECT_NEAR(a.sched().queue_bytes(), b.sched().queue_bytes(), 1e-9);
    EXPECT_EQ(a.failed_transfers(), b.failed_transfers());
    EXPECT_EQ(a.network_state(), b.network_state());
    EXPECT_NEAR(a.battery().level(), b.battery().level(), 1e-12);
    const auto& ua = metrics_a.user(0);
    const auto& ub = metrics_b.user(0);
    EXPECT_EQ(ua.delivered, ub.delivered);
    EXPECT_NEAR(ua.bytes_delivered, ub.bytes_delivered, 1e-9);
    EXPECT_NEAR(ua.utility_delivered, ub.utility_delivered, 1e-9);
    EXPECT_NEAR(ua.energy_joules, ub.energy_joules, 1e-9);
}

TEST_F(broker_resilience, checkpoint_restores_the_richnote_controller) {
    metrics_recorder metrics(1, 6);
    richnote_scheduler::params rp;
    auto b = make_broker(metrics, 50'000.0, nullptr,
                         std::make_unique<richnote_scheduler>(rp, energy_));
    for (int r = 0; r < 5; ++r) {
        b.admit(make_note(static_cast<std::uint64_t>(r)));
        b.run_round(r * t::default_round);
    }
    const auto cp = b.checkpoint();
    const double q = b.sched().queue_bytes();
    const double p = b.sched().energy_credit_joules();

    for (int r = 5; r < 10; ++r) b.run_round(r * t::default_round);
    b.restore(cp);

    EXPECT_DOUBLE_EQ(b.sched().queue_bytes(), q);
    EXPECT_DOUBLE_EQ(b.sched().energy_credit_joules(), p);

    // The restored broker still rejects replays seen before the snapshot.
    b.admit(make_note(2));
    EXPECT_EQ(b.duplicates_suppressed(), 1u);
}

} // namespace

// NDJSON wire codec (core/wire.hpp): exact round-trips, strictness about
// malformed input, leniency about extras — the contract `richnote serve`
// relies on for bit-identical ingest replay.
#include "core/wire.hpp"

#include <gtest/gtest.h>

#include <string>

#include "trace/notification.hpp"

namespace {

using richnote::core::format_wire_line;
using richnote::core::parse_wire_line;
using richnote::trace::notification;
using richnote::trace::notification_type;

notification sample() {
    notification n;
    n.id = 0xdeadbeefcafeULL;
    n.recipient = 37;
    n.type = notification_type::album_release;
    n.track = 204;
    // Deliberately awkward doubles: none is exactly representable, so a
    // lossy printf precision would be caught by the bitwise comparison.
    n.created_at = 3600.0 + 1.0 / 3.0;
    n.features.social_tie = 0.1 + 0.2;
    n.features.track_popularity = 81.7;
    n.features.album_popularity = 1e-3;
    n.features.artist_popularity = 99.999999999999986;
    n.features.weekend = true;
    n.features.daytime = false;
    n.attended = true;
    n.clicked = true;
    n.clicked_at = 7261.25;
    return n;
}

TEST(wire_codec, round_trip_preserves_every_field_bitwise) {
    const notification n = sample();
    notification out;
    std::string error;
    ASSERT_TRUE(parse_wire_line(format_wire_line(n), out, &error)) << error;
    EXPECT_EQ(out.id, n.id);
    EXPECT_EQ(out.recipient, n.recipient);
    EXPECT_EQ(out.type, n.type);
    EXPECT_EQ(out.track, n.track);
    // %.17g round-trips every finite double; EXPECT_EQ checks exact value.
    EXPECT_EQ(out.created_at, n.created_at);
    EXPECT_EQ(out.features.social_tie, n.features.social_tie);
    EXPECT_EQ(out.features.track_popularity, n.features.track_popularity);
    EXPECT_EQ(out.features.album_popularity, n.features.album_popularity);
    EXPECT_EQ(out.features.artist_popularity, n.features.artist_popularity);
    EXPECT_EQ(out.features.weekend, n.features.weekend);
    EXPECT_EQ(out.features.daytime, n.features.daytime);
    EXPECT_EQ(out.attended, n.attended);
    EXPECT_EQ(out.clicked, n.clicked);
    EXPECT_EQ(out.clicked_at, n.clicked_at);
}

TEST(wire_codec, every_notification_type_round_trips) {
    for (const auto type : {notification_type::friend_feed,
                            notification_type::album_release,
                            notification_type::playlist_update}) {
        notification n = sample();
        n.type = type;
        notification out;
        ASSERT_TRUE(parse_wire_line(format_wire_line(n), out, nullptr));
        EXPECT_EQ(out.type, type);
    }
}

TEST(wire_codec, truncated_lines_are_rejected) {
    const std::string line = format_wire_line(sample());
    // Every proper prefix is either unterminated JSON or (shorter still)
    // not JSON at all; none may parse.
    for (const std::size_t len : {std::size_t{0}, std::size_t{1}, line.size() / 4,
                                  line.size() / 2, line.size() - 10, line.size() - 1}) {
        notification out;
        std::string error;
        EXPECT_FALSE(parse_wire_line(std::string_view(line).substr(0, len), out, &error))
            << "prefix of length " << len << " parsed";
        EXPECT_FALSE(error.empty());
    }
}

TEST(wire_codec, missing_required_fields_are_named) {
    for (const char* field : {"id", "user", "type", "track", "created_at"}) {
        std::string line = format_wire_line(sample());
        // Remove the "key":value pair (and its leading comma when interior).
        const std::string key = std::string("\"") + field + "\":";
        const std::size_t at = line.find(key);
        ASSERT_NE(at, std::string::npos);
        std::size_t end = line.find(',', at);
        if (end == std::string::npos) end = line.find('}', at);
        std::size_t begin = at;
        if (line[begin - 1] == ',') {
            --begin; // interior pair: eat the leading comma
        } else if (line[end] == ',') {
            ++end; // first pair: eat the trailing comma instead
        }
        line.erase(begin, end - begin);
        notification out;
        std::string error;
        EXPECT_FALSE(parse_wire_line(line, out, &error)) << line;
        EXPECT_EQ(error, std::string("missing field: ") + field);
    }
}

TEST(wire_codec, bad_field_values_are_rejected_with_reason) {
    const struct {
        const char* line;
        const char* reason;
    } cases[] = {
        {"not json at all", "bad json"},
        {R"({"id":-3,"user":0,"type":"friend_feed","track":1,"created_at":0})",
         "bad field: id"},
        {R"({"id":1,"user":1.5,"type":"friend_feed","track":1,"created_at":0})",
         "bad field: user"},
        {R"({"id":1,"user":0,"type":"spam","track":1,"created_at":0})",
         "bad field: type"},
        {R"({"id":1,"user":0,"type":"friend_feed","track":1,"created_at":-7})",
         "bad field: created_at"},
        {R"({"id":1,"user":99999999999,"type":"friend_feed","track":1,"created_at":0})",
         "bad field: user"},
    };
    for (const auto& c : cases) {
        notification out;
        std::string error;
        EXPECT_FALSE(parse_wire_line(c.line, out, &error)) << c.line;
        EXPECT_EQ(error, c.reason) << c.line;
    }
}

TEST(wire_codec, unknown_keys_are_ignored_and_labels_default) {
    // A foreign producer sends only the routing + feature core, plus a key
    // this codec has never heard of.
    const char* line =
        R"({"id":9,"user":2,"type":"playlist_update","track":5,"created_at":120,)"
        R"("social_tie":0.5,"vendor_hint":"ignored"})";
    notification out;
    std::string error;
    ASSERT_TRUE(parse_wire_line(line, out, &error)) << error;
    EXPECT_EQ(out.id, 9u);
    EXPECT_EQ(out.recipient, 2u);
    EXPECT_EQ(out.features.social_tie, 0.5);
    EXPECT_FALSE(out.attended);
    EXPECT_FALSE(out.clicked);
    EXPECT_EQ(out.clicked_at, 0.0);
}

} // namespace

#include "core/mckp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/presentation.hpp"

namespace {

using richnote::rng;
using richnote::core::mckp_exact;
using richnote::core::mckp_item;
using richnote::core::mckp_options;
using richnote::core::mckp_solution;
using richnote::core::select_presentations;

mckp_item simple_item(double content_utility = 1.0) {
    // Concave (diminishing-returns) menu like the audio generator's.
    mckp_item item;
    item.sizes = {10, 110, 210, 410};
    item.utilities = {0.01 * content_utility, 0.26 * content_utility,
                      0.5 * content_utility, 0.75 * content_utility};
    return item;
}

TEST(mckp, zero_budget_selects_nothing) {
    const auto solution = select_presentations({simple_item()}, 0.0);
    EXPECT_EQ(solution.levels[0], 0u);
    EXPECT_DOUBLE_EQ(solution.total_utility, 0.0);
    EXPECT_TRUE(solution.budget_exhausted);
}

TEST(mckp, generous_budget_selects_max_levels) {
    const auto solution = select_presentations({simple_item(), simple_item()}, 1e9);
    EXPECT_EQ(solution.levels[0], 4u);
    EXPECT_EQ(solution.levels[1], 4u);
    EXPECT_FALSE(solution.budget_exhausted);
    EXPECT_DOUBLE_EQ(solution.total_utility, 1.5);
    EXPECT_DOUBLE_EQ(solution.fractional_bound, solution.total_utility);
}

TEST(mckp, empty_instance_is_fine) {
    const auto solution = select_presentations({}, 100.0);
    EXPECT_TRUE(solution.levels.empty());
    EXPECT_DOUBLE_EQ(solution.total_utility, 0.0);
}

TEST(mckp, respects_budget_exactly) {
    rng gen(3);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<mckp_item> items;
        for (int i = 0; i < 10; ++i) items.push_back(simple_item(gen.uniform(0.1, 1.0)));
        const double budget = gen.uniform(0, 2000);
        const auto solution = select_presentations(items, budget);
        EXPECT_LE(solution.total_size, budget + 1e-9);
    }
}

TEST(mckp, upgrades_highest_gradient_first) {
    // Two items; the second is twice as useful, so its upgrades dominate
    // the gradient heap. With budget 130 the greedy takes item 2's meta
    // (10) and 5 s upgrade (110 more -> 120), then stops when item 2's
    // next upgrade (100 more) does not fit — Algorithm 1's done <- true
    // fires before item 1's cheaper meta is ever considered.
    std::vector<mckp_item> items = {simple_item(0.5), simple_item(1.0)};
    const auto solution = select_presentations(items, 130.0);
    EXPECT_EQ(solution.levels[0], 0u);
    EXPECT_EQ(solution.levels[1], 2u);
    EXPECT_TRUE(solution.budget_exhausted);

    // The skip_infeasible extension keeps going and picks up item 1's meta.
    mckp_options skip;
    skip.skip_infeasible = true;
    const auto relaxed = select_presentations(items, 130.0, skip);
    EXPECT_EQ(relaxed.levels[0], 1u);
    EXPECT_EQ(relaxed.levels[1], 2u);
}

TEST(mckp, stops_at_first_infeasible_upgrade_by_default) {
    // Algorithm 1 sets done <- true as soon as the best upgrade does not
    // fit, even if a later (smaller) upgrade would.
    mckp_item big; // best gradient but large step at level 2
    big.sizes = {10, 1000};
    big.utilities = {0.1, 100.0};
    mckp_item small;
    small.sizes = {5, 20};
    small.utilities = {0.01, 0.02};
    // After big's level-1 upgrade, big's huge level-2 gradient tops the
    // heap but its 990-byte step does not fit in 100; the default stops
    // immediately, before small's meta is even considered.
    const auto stop = select_presentations({big, small}, 100.0);
    EXPECT_EQ(stop.levels[0], 1u);
    EXPECT_EQ(stop.levels[1], 0u);
    EXPECT_TRUE(stop.budget_exhausted);

    mckp_options skip;
    skip.skip_infeasible = true;
    const auto cont = select_presentations({big, small}, 100.0, skip);
    EXPECT_EQ(cont.levels[1], 2u); // the small upgrade is still taken
    EXPECT_GE(cont.total_utility, stop.total_utility);
}

TEST(mckp, never_takes_negative_gradient_upgrades) {
    // Lyapunov-adjusted utilities can decrease with level; such upgrades
    // must never be taken even with infinite budget.
    mckp_item item;
    item.sizes = {10, 20};
    item.utilities = {0.5, 0.1};
    const auto solution = select_presentations({item}, 1e9);
    EXPECT_EQ(solution.levels[0], 1u);
    EXPECT_DOUBLE_EQ(solution.total_utility, 0.5);
}

TEST(mckp, items_with_nonpositive_first_utility_stay_unsent) {
    mckp_item bad;
    bad.sizes = {10};
    bad.utilities = {-0.5};
    mckp_item good;
    good.sizes = {10};
    good.utilities = {0.5};
    const auto solution = select_presentations({bad, good}, 1e9);
    EXPECT_EQ(solution.levels[0], 0u);
    EXPECT_EQ(solution.levels[1], 1u);
}

TEST(mckp, fractional_bound_dominates_integral_value) {
    rng gen(7);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<mckp_item> items;
        const int n = 1 + static_cast<int>(gen.index(8));
        for (int i = 0; i < n; ++i) items.push_back(simple_item(gen.uniform(0.1, 1.0)));
        const double budget = gen.uniform(0, 1500);
        const auto solution = select_presentations(items, budget);
        EXPECT_GE(solution.fractional_bound, solution.total_utility - 1e-12);
    }
}

/// On concave menus the greedy is within the last skipped upgrade of the
/// exact optimum; verify against the DP oracle on random small instances.
TEST(mckp, greedy_is_near_exact_on_concave_instances) {
    rng gen(11);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<mckp_item> items;
        const int n = 2 + static_cast<int>(gen.index(5));
        for (int i = 0; i < n; ++i) items.push_back(simple_item(gen.uniform(0.1, 1.0)));
        const double budget = gen.uniform(100, 1200);
        mckp_options skip;
        skip.skip_infeasible = true;
        const auto greedy = select_presentations(items, budget, skip);
        const auto exact = mckp_exact(items, budget, 1.0);
        EXPECT_LE(exact.total_size, budget + 1e-9);
        EXPECT_LE(greedy.total_utility, exact.total_utility + 1e-9);
        // §IV: the gap is at most the utility of one presentation upgrade —
        // bounded here by the largest per-item utility (0.75 * U_c <= 0.75).
        EXPECT_GE(greedy.total_utility, exact.total_utility - 0.75);
    }
}

TEST(mckp_exact_dp, solves_a_known_instance_optimally) {
    // Item A: levels (size 4, util 3) / (size 7, util 5).
    // Item B: levels (size 5, util 4).
    // Budget 9: best is A@1 + B@1 = 7 utility (size 9).
    mckp_item a;
    a.sizes = {4, 7};
    a.utilities = {3, 5};
    mckp_item b;
    b.sizes = {5};
    b.utilities = {4};
    const auto solution = mckp_exact({a, b}, 9.0, 1.0);
    EXPECT_DOUBLE_EQ(solution.total_utility, 7.0);
    EXPECT_EQ(solution.levels[0], 1u);
    EXPECT_EQ(solution.levels[1], 1u);
}

TEST(mckp_exact_dp, beats_or_matches_greedy_on_non_concave_menus) {
    // Non-concave utilities where greedy's myopia can cost it.
    rng gen(13);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<mckp_item> items;
        const int n = 2 + static_cast<int>(gen.index(4));
        for (int i = 0; i < n; ++i) {
            mckp_item item;
            double size = 0;
            double util = 0;
            const int levels = 1 + static_cast<int>(gen.index(4));
            for (int j = 0; j < levels; ++j) {
                size += 1.0 + std::floor(gen.uniform(1, 20));
                util += gen.uniform(0.01, 1.0);
                item.sizes.push_back(size);
                item.utilities.push_back(util);
            }
            items.push_back(std::move(item));
        }
        const double budget = std::floor(gen.uniform(5, 60));
        mckp_options skip;
        skip.skip_infeasible = true;
        const auto greedy = select_presentations(items, budget, skip);
        const auto exact = mckp_exact(items, budget, 1.0);
        EXPECT_GE(exact.total_utility, greedy.total_utility - 1e-9);
    }
}

TEST(mckp, make_mckp_item_applies_equation_1) {
    using richnote::core::make_mckp_item;
    using richnote::core::presentation;
    using richnote::core::presentation_set;
    const presentation_set set({presentation{"meta", 200, 0.01, 0},
                                presentation{"meta+5s", 100'200, 0.26, 5}});
    const auto item = make_mckp_item(set, 0.5);
    ASSERT_EQ(item.level_count(), 2u);
    EXPECT_DOUBLE_EQ(item.sizes[0], 200.0);
    EXPECT_DOUBLE_EQ(item.utilities[0], 0.5 * 0.01);
    EXPECT_DOUBLE_EQ(item.utilities[1], 0.5 * 0.26);
}

TEST(mckp, rejects_malformed_items) {
    mckp_item bad;
    bad.sizes = {10, 5}; // not increasing
    bad.utilities = {0.1, 0.2};
    EXPECT_THROW(select_presentations({bad}, 100.0), richnote::precondition_error);
    mckp_item mismatch;
    mismatch.sizes = {10};
    mismatch.utilities = {0.1, 0.2};
    EXPECT_THROW(select_presentations({mismatch}, 100.0), richnote::precondition_error);
    EXPECT_THROW(select_presentations({simple_item()}, -1.0), richnote::precondition_error);
    EXPECT_THROW(mckp_exact({simple_item()}, 10.0, 0.0), richnote::precondition_error);
}

/// The paper's complexity claim: runtime scales near O(n + k log n). We
/// cannot time reliably in a unit test, but we can check the upgrade count
/// is exactly bounded by the total number of levels.
TEST(mckp, upgrade_count_is_bounded_by_total_levels) {
    std::vector<mckp_item> items(100, simple_item());
    const auto solution = select_presentations(items, 1e12);
    EXPECT_EQ(solution.upgrades, 400u);
}

} // namespace

// Oracle-backed property tests for the MCKP solvers (DESIGN.md §9): the
// greedy of Algorithm 1 and the DP of mckp_exact are both checked against
// an independent exhaustive-enumeration oracle (tests/core/mckp_oracle.hpp)
// on hundreds of seeded random instances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/mckp.hpp"
#include "core/presentation.hpp"
#include "mckp_oracle.hpp"

namespace {

using richnote::rng;
using richnote::core::audio_preview_generator;
using richnote::core::make_mckp_item;
using richnote::core::mckp_exact;
using richnote::core::mckp_item;
using richnote::core::mckp_item_2d;
using richnote::core::mckp_options;
using richnote::core::mckp_scratch;
using richnote::core::mckp_solution;
using richnote::core::select_presentations;
using richnote::core::select_presentations_2d;
using richnote::testing::mckp_oracle;
using richnote::testing::mckp_oracle_2d;

constexpr double eps = 1e-9;

/// Small instance from the real presentation menus (the shapes the
/// scheduler actually feeds the solver).
std::vector<mckp_item> menu_instance(std::size_t n, std::uint64_t seed) {
    static const audio_preview_generator generator{audio_preview_generator::params{}};
    rng gen(seed);
    std::vector<mckp_item> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double track_sec = gen.bernoulli(0.3) ? gen.uniform(6.0, 35.0) : 276.0;
        items.push_back(
            make_mckp_item(generator.generate(track_sec), gen.uniform(0.05, 1.0)));
    }
    return items;
}

/// Instance with exact integer sizes so the DP's size rounding is lossless
/// and it must match the enumeration oracle exactly.
std::vector<mckp_item> integral_instance(std::size_t n, std::uint64_t seed) {
    rng gen(seed);
    std::vector<mckp_item> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto levels = static_cast<std::size_t>(gen.uniform_int(1, 4));
        mckp_item item;
        double size = 0.0;
        for (std::size_t j = 0; j < levels; ++j) {
            size += static_cast<double>(gen.uniform_int(1, 9));
            item.sizes.push_back(size);
            item.utilities.push_back(gen.uniform(0.0, 10.0));
        }
        items.push_back(std::move(item));
    }
    return items;
}

double recomputed_size(const std::vector<mckp_item>& items,
                       const std::vector<richnote::core::level_t>& levels) {
    double total = 0.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (levels[i] > 0) total += items[i].sizes[levels[i] - 1];
    }
    return total;
}

// 1. The greedy never beats the exact optimum and never busts the budget —
//    200 seeded menu instances spanning tight to slack budgets.
TEST(mckp_oracle_suite, greedy_is_feasible_and_bounded_by_oracle) {
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng gen(seed * 7919);
        const auto n = static_cast<std::size_t>(gen.uniform_int(1, 5));
        const auto items = menu_instance(n, seed);
        double menu_total = 0.0;
        for (const auto& item : items) menu_total += item.sizes.back();
        const double budget = gen.uniform(0.0, 1.2) * menu_total;

        const auto greedy = select_presentations(items, budget);
        const auto exact = mckp_oracle(items, budget);

        ASSERT_LE(recomputed_size(items, greedy.levels), budget + eps)
            << "seed " << seed;
        ASSERT_LE(recomputed_size(items, exact.levels), budget + eps) << "seed " << seed;
        EXPECT_LE(greedy.total_utility, exact.total_utility + eps) << "seed " << seed;
        // The fractional relaxation bound reported by the greedy must cover
        // its own integral value.
        EXPECT_GE(greedy.fractional_bound, greedy.total_utility - eps)
            << "seed " << seed;
    }
}

// 2. When every item fits at max level the greedy IS optimal and must match
//    the oracle exactly.
TEST(mckp_oracle_suite, greedy_matches_oracle_when_everything_fits) {
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const auto items = menu_instance(1 + seed % 5, seed);
        double menu_total = 0.0;
        for (const auto& item : items) menu_total += item.sizes.back();

        const auto greedy = select_presentations(items, menu_total + 1.0);
        const auto exact = mckp_oracle(items, menu_total + 1.0);
        EXPECT_NEAR(greedy.total_utility, exact.total_utility, eps) << "seed " << seed;
        EXPECT_FALSE(greedy.budget_exhausted) << "seed " << seed;
    }
}

// 3. The production DP (rounds sizes up) agrees with the enumeration
//    oracle bit-for-bit on instances whose sizes are already integral.
TEST(mckp_oracle_suite, exact_dp_matches_oracle_on_integral_sizes) {
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng gen(seed * 104729);
        const auto n = static_cast<std::size_t>(gen.uniform_int(1, 6));
        const auto items = integral_instance(n, seed);
        double menu_total = 0.0;
        for (const auto& item : items) menu_total += item.sizes.back();
        const double budget = std::floor(gen.uniform(0.0, 1.1) * menu_total);

        const auto dp = mckp_exact(items, budget, 1.0);
        const auto exact = mckp_oracle(items, budget);
        ASSERT_LE(recomputed_size(items, dp.levels), budget + eps) << "seed " << seed;
        EXPECT_NEAR(dp.total_utility, exact.total_utility, 1e-6) << "seed " << seed;
    }
}

// 4. The scratch (allocation-free) overload and the fresh-allocation
//    overload are the same algorithm; results must agree bit-for-bit.
TEST(mckp_oracle_suite, scratch_and_fresh_overloads_agree) {
    mckp_scratch scratch;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng gen(seed * 31);
        const auto n = static_cast<std::size_t>(gen.uniform_int(1, 40));
        const auto items = menu_instance(n, seed + 1000);
        double menu_total = 0.0;
        for (const auto& item : items) menu_total += item.sizes.back();
        const double budget = gen.uniform(0.0, 1.0) * menu_total;
        mckp_options options;
        options.skip_infeasible = (seed % 2 == 0);

        const mckp_solution fresh = select_presentations(items, budget, options);
        const mckp_solution& reused = select_presentations(items, budget, options, scratch);

        ASSERT_EQ(fresh.levels, reused.levels) << "seed " << seed;
        EXPECT_EQ(fresh.total_size, reused.total_size) << "seed " << seed;
        EXPECT_EQ(fresh.total_utility, reused.total_utility) << "seed " << seed;
        EXPECT_EQ(fresh.upgrades, reused.upgrades) << "seed " << seed;
        EXPECT_EQ(fresh.budget_exhausted, reused.budget_exhausted) << "seed " << seed;
        EXPECT_EQ(fresh.fractional_bound, reused.fractional_bound) << "seed " << seed;
    }
}

// 5. Two-constraint greedy (Eq. 2) against the 2-d enumeration oracle:
//    feasible in BOTH budgets, never above the exact optimum.
TEST(mckp_oracle_suite, greedy_2d_is_feasible_and_bounded_by_oracle) {
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng gen(seed * 6151);
        const auto n = static_cast<std::size_t>(gen.uniform_int(1, 4));
        std::vector<mckp_item_2d> items;
        for (std::size_t i = 0; i < n; ++i) {
            const auto levels = static_cast<std::size_t>(gen.uniform_int(1, 4));
            mckp_item_2d item;
            double size = 0.0;
            double energy = 0.0;
            for (std::size_t j = 0; j < levels; ++j) {
                size += gen.uniform(0.5, 5.0);
                energy += gen.uniform(0.0, 2.0);
                item.sizes.push_back(size);
                item.energies.push_back(energy);
                item.utilities.push_back(gen.uniform(0.0, 1.0));
            }
            items.push_back(std::move(item));
        }
        double size_total = 0.0;
        double energy_total = 0.0;
        for (const auto& item : items) {
            size_total += item.sizes.back();
            energy_total += item.energies.back();
        }
        const double data_budget = gen.uniform(0.2, 1.1) * size_total;
        const double energy_budget = gen.uniform(0.2, 1.1) * (energy_total + 1e-6);

        const auto greedy = select_presentations_2d(items, data_budget, energy_budget);
        const auto exact = mckp_oracle_2d(items, data_budget, energy_budget);

        double used_size = 0.0;
        double used_energy = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (greedy.levels[i] > 0) {
                used_size += items[i].sizes[greedy.levels[i] - 1];
                used_energy += items[i].energies[greedy.levels[i] - 1];
            }
        }
        ASSERT_LE(used_size, data_budget + eps) << "seed " << seed;
        ASSERT_LE(used_energy, energy_budget + eps) << "seed " << seed;
        EXPECT_LE(greedy.total_utility, exact.total_utility + eps) << "seed " << seed;
    }
}

// 6. The oracle itself sanity-checks on a hand-solvable instance.
TEST(mckp_oracle_suite, oracle_solves_known_instance) {
    // Two items; budget 10. Best is item0@L2 (size 6, u 5) + item1@L1
    // (size 4, u 3) = 8; greedy by gradient would grab item1@L2 first.
    std::vector<mckp_item> items(2);
    items[0].sizes = {3, 6};
    items[0].utilities = {2, 5};
    items[1].sizes = {4, 8};
    items[1].utilities = {3, 6};
    const auto exact = mckp_oracle(items, 10.0);
    EXPECT_DOUBLE_EQ(exact.total_utility, 8.0);
    EXPECT_EQ(exact.levels, (std::vector<richnote::core::level_t>{2, 1}));
    EXPECT_DOUBLE_EQ(exact.total_size, 10.0);
}

} // namespace

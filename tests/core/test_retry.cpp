// Retry budget, exponential backoff and dead-lettering for transfers that
// cut mid-flight, plus the interaction of expiry with retry state and the
// queue_bytes() bookkeeping invariant (resilient delivery pipeline).
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/presentation.hpp"
#include "energy/model.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::fifo_scheduler;
using richnote::core::retry_policy;
using richnote::core::richnote_scheduler;
using richnote::core::round_context;
using richnote::core::sched_item;
using richnote::sim::net_state;

const richnote::energy::energy_model g_energy;

sched_item make_item(std::uint64_t id, double content_utility = 0.5,
                     double created_at = 0.0) {
    static const audio_preview_generator generator{audio_preview_generator::params{}};
    sched_item item;
    item.note.id = id;
    item.note.recipient = 0;
    item.note.created_at = created_at;
    item.content_utility = content_utility;
    item.presentations = generator.generate(276.0);
    item.arrived_at = created_at;
    return item;
}

round_context cell_ctx(double budget = 1e12) {
    round_context ctx;
    ctx.data_budget_bytes = budget;
    ctx.network = net_state::cell;
    ctx.metered = true;
    ctx.link_capacity_bytes = 1e12;
    ctx.energy_replenishment = 3000.0;
    return ctx;
}

double sum_queue_bytes(const richnote::core::queue_scheduler_base& s) {
    double total = 0.0;
    for (const auto& item : s.queued_items()) total += item.presentations.total_size();
    return total;
}

TEST(retry, default_policy_retries_forever_without_backoff) {
    fifo_scheduler s(3, g_energy);
    s.enqueue(make_item(1));
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(s.on_transfer_failed(1, i * 3600.0));
    }
    EXPECT_EQ(s.queue_size(), 1u);
    EXPECT_EQ(s.retries(), 50u);
    EXPECT_EQ(s.dead_lettered(), 0u);
    // No backoff configured: the item is planned again immediately.
    EXPECT_EQ(s.plan(cell_ctx()).size(), 1u);
}

TEST(retry, exhausted_budget_dead_letters_the_item) {
    fifo_scheduler s(3, g_energy);
    retry_policy policy;
    policy.max_attempts = 3;
    s.set_retry_policy(policy);
    s.enqueue(make_item(1));

    EXPECT_FALSE(s.on_transfer_failed(1, 0.0));
    EXPECT_FALSE(s.on_transfer_failed(1, 3600.0));
    EXPECT_TRUE(s.on_transfer_failed(1, 7200.0)); // third strike
    EXPECT_EQ(s.queue_size(), 0u);
    EXPECT_DOUBLE_EQ(s.queue_bytes(), 0.0);
    EXPECT_EQ(s.retries(), 2u);
    EXPECT_EQ(s.dead_lettered(), 1u);
    // The dead-lettered item left the index too.
    EXPECT_THROW(s.on_transfer_failed(1, 0.0), richnote::precondition_error);
}

TEST(retry, dead_letter_unblocks_the_fifo_head) {
    // A poisoned head item must not head-of-line-block FIFO forever: once
    // dead-lettered, the next item is planned first.
    fifo_scheduler s(3, g_energy);
    retry_policy policy;
    policy.max_attempts = 1;
    s.set_retry_policy(policy);
    s.enqueue(make_item(1, 0.5, 0.0));
    s.enqueue(make_item(2, 0.5, 1.0));

    auto plan = s.plan(cell_ctx());
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan.front().item_id, 1u);

    EXPECT_TRUE(s.on_transfer_failed(1, 0.0)); // first failure dead-letters
    plan = s.plan(cell_ctx());
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan.front().item_id, 2u);
}

TEST(retry, backoff_doubles_and_caps) {
    fifo_scheduler s(3, g_energy);
    retry_policy policy;
    policy.backoff_base_sec = 100.0;
    policy.backoff_cap_sec = 350.0;
    s.set_retry_policy(policy);
    s.enqueue(make_item(1));

    // Failure at t=0: back off 100 s.
    EXPECT_FALSE(s.on_transfer_failed(1, 0.0));
    auto ctx = cell_ctx();
    ctx.now = 50.0;
    EXPECT_TRUE(s.plan(ctx).empty()) << "item must be skipped while backing off";
    ctx.now = 100.0;
    EXPECT_EQ(s.plan(ctx).size(), 1u);

    // Second failure at t=100: back off 200 s.
    EXPECT_FALSE(s.on_transfer_failed(1, 100.0));
    ctx.now = 250.0;
    EXPECT_TRUE(s.plan(ctx).empty());
    ctx.now = 300.0;
    EXPECT_EQ(s.plan(ctx).size(), 1u);

    // Third failure at t=300: 400 s is clipped by the 350 s cap.
    EXPECT_FALSE(s.on_transfer_failed(1, 300.0));
    ctx.now = 649.0;
    EXPECT_TRUE(s.plan(ctx).empty());
    ctx.now = 650.0;
    EXPECT_EQ(s.plan(ctx).size(), 1u);
}

TEST(retry, backoff_skip_does_not_block_other_items_in_richnote) {
    richnote_scheduler s({}, g_energy);
    retry_policy policy;
    policy.backoff_base_sec = 1000.0;
    s.set_retry_policy(policy);
    s.enqueue(make_item(1, 0.9));
    s.enqueue(make_item(2, 0.8));
    EXPECT_FALSE(s.on_transfer_failed(1, 0.0));

    auto ctx = cell_ctx();
    ctx.now = 10.0;
    // The backing-off item gets an empty MCKP menu instead of blocking the
    // round: whatever is planned, item 1 is not part of it.
    for (const auto& d : s.plan(ctx)) EXPECT_NE(d.item_id, 1u);
}

TEST(retry, unknown_item_failure_throws) {
    fifo_scheduler s(3, g_energy);
    EXPECT_THROW(s.on_transfer_failed(99, 0.0), richnote::precondition_error);
}

// --------------------------------------------- expiry x retry state ----

TEST(expiry, expire_drops_backing_off_items_and_their_bookkeeping) {
    fifo_scheduler s(3, g_energy);
    retry_policy policy;
    policy.backoff_base_sec = 1e6; // effectively parked
    s.set_retry_policy(policy);

    s.enqueue(make_item(1, 0.5, /*created_at=*/0.0));
    s.enqueue(make_item(2, 0.5, /*created_at=*/5000.0));
    s.enqueue(make_item(3, 0.5, /*created_at=*/9000.0));
    // Item 1 accumulates retry state, then ages past the cutoff.
    EXPECT_FALSE(s.on_transfer_failed(1, 0.0));
    EXPECT_FALSE(s.on_transfer_failed(2, 0.0));

    EXPECT_EQ(s.expire_older_than(6000.0), 2u);
    EXPECT_EQ(s.queue_size(), 1u);
    EXPECT_DOUBLE_EQ(s.queue_bytes(), sum_queue_bytes(s));
    EXPECT_EQ(s.queued_items().front().note.id, 3u);
    // Retry counters describe history, not queue contents; they survive.
    EXPECT_EQ(s.retries(), 2u);
    // The expired items' ids are free again (fresh enqueue must not throw),
    // and their retry state went with them.
    s.enqueue(make_item(1, 0.5, 10000.0));
    EXPECT_EQ(s.queued_items().back().failed_attempts, 0u);
    EXPECT_DOUBLE_EQ(s.queue_bytes(), sum_queue_bytes(s));
}

TEST(expiry, queue_bytes_stays_consistent_through_mixed_churn) {
    fifo_scheduler s(3, g_energy);
    retry_policy policy;
    policy.max_attempts = 2;
    s.set_retry_policy(policy);

    for (std::uint64_t id = 0; id < 30; ++id)
        s.enqueue(make_item(id, 0.5, static_cast<double>(id) * 100.0));

    EXPECT_FALSE(s.on_transfer_failed(4, 0.0));
    EXPECT_TRUE(s.on_transfer_failed(4, 0.0)); // second failure dead-letters
    s.on_delivered(10, 1.0);
    EXPECT_EQ(s.expire_older_than(500.0), 4u); // ids 0..3 (4 is already gone)
    EXPECT_DOUBLE_EQ(s.queue_bytes(), sum_queue_bytes(s));

    EXPECT_FALSE(s.on_transfer_failed(20, 0.0));
    EXPECT_TRUE(s.on_transfer_failed(20, 0.0));
    EXPECT_DOUBLE_EQ(s.queue_bytes(), sum_queue_bytes(s));
    EXPECT_EQ(s.dead_lettered(), 2u);
}

// ------------------------------------------------- checkpointing ----

TEST(scheduler_checkpoint, round_trips_queue_and_counters) {
    fifo_scheduler s(3, g_energy);
    retry_policy policy;
    policy.max_attempts = 5;
    policy.backoff_base_sec = 60.0;
    s.set_retry_policy(policy);
    s.enqueue(make_item(1, 0.5, 0.0));
    s.enqueue(make_item(2, 0.7, 100.0));
    EXPECT_FALSE(s.on_transfer_failed(1, 0.0));

    const auto cp = s.checkpoint();

    // Diverge, then restore.
    s.on_delivered(2, 3.0);
    EXPECT_FALSE(s.on_transfer_failed(1, 200.0));
    s.restore(cp);

    EXPECT_EQ(s.queue_size(), 2u);
    EXPECT_EQ(s.retries(), 1u);
    EXPECT_DOUBLE_EQ(s.queue_bytes(), sum_queue_bytes(s));
    EXPECT_EQ(s.queued_items().front().failed_attempts, 1u);
    EXPECT_DOUBLE_EQ(s.queued_items().front().retry_not_before, 60.0);
    // Restored queue behaves identically: id 2 is deliverable again.
    s.on_delivered(2, 3.0);
    EXPECT_EQ(s.queue_size(), 1u);
}

TEST(scheduler_checkpoint, richnote_restores_lyapunov_state) {
    richnote_scheduler s({}, g_energy);
    s.enqueue(make_item(1, 0.9));
    s.enqueue(make_item(2, 0.8));
    auto ctx = cell_ctx();
    (void)s.plan(ctx); // replenishes P(t) via plan-side accounting if any

    const auto cp = s.checkpoint();
    const double q_before = s.controller().queue_backlog();
    const double p_before = s.controller().energy_credit();

    s.on_delivered(1, 5.0);
    s.on_session_overhead(10.0);
    EXPECT_NE(s.controller().queue_backlog(), q_before);

    s.restore(cp);
    EXPECT_DOUBLE_EQ(s.controller().queue_backlog(), q_before);
    EXPECT_DOUBLE_EQ(s.controller().energy_credit(), p_before);
    EXPECT_EQ(s.queue_size(), 2u);
    EXPECT_DOUBLE_EQ(s.queue_bytes(), sum_queue_bytes(s));
}

} // namespace

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mckp.hpp"

namespace {

using richnote::rng;
using richnote::core::mckp_exact_2d;
using richnote::core::mckp_item_2d;
using richnote::core::mckp_options;
using richnote::core::select_presentations_2d;

mckp_item_2d audio_item_2d(double content_utility) {
    // Six-level audio menu with energy proportional to size plus a fixed
    // overhead share, like the scheduler builds.
    mckp_item_2d item;
    const std::vector<double> sizes = {200,     100'200, 200'200,
                                       400'200, 600'200, 800'200};
    for (double s : sizes) {
        item.sizes.push_back(s);
        item.energies.push_back(2.0 + 0.025 * s / 1024.0);
    }
    item.utilities = {0.01, 0.26, 0.50, 0.74, 0.89, 1.0};
    for (auto& u : item.utilities) u *= content_utility;
    return item;
}

TEST(mckp_2d, generous_budgets_select_max_levels) {
    const auto solution =
        select_presentations_2d({audio_item_2d(0.5), audio_item_2d(1.0)}, 1e9, 1e9);
    EXPECT_EQ(solution.levels[0], 6u);
    EXPECT_EQ(solution.levels[1], 6u);
    EXPECT_FALSE(solution.budget_exhausted);
}

TEST(mckp_2d, zero_budgets_select_nothing) {
    const auto solution = select_presentations_2d({audio_item_2d(1.0)}, 0.0, 0.0);
    EXPECT_EQ(solution.levels[0], 0u);
}

TEST(mckp_2d, data_budget_binds_like_1d) {
    // With unlimited energy, the 2d solver must respect the data budget.
    rng gen(3);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<mckp_item_2d> items;
        for (int i = 0; i < 8; ++i) items.push_back(audio_item_2d(gen.uniform(0.1, 1.0)));
        const double budget = gen.uniform(1e5, 3e6);
        const auto solution = select_presentations_2d(items, budget, 1e12);
        EXPECT_LE(solution.total_size, budget + 1e-6);
    }
}

TEST(mckp_2d, energy_budget_binds) {
    // Unlimited data, tight energy: total energy of the selection must fit.
    rng gen(5);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<mckp_item_2d> items;
        for (int i = 0; i < 8; ++i) items.push_back(audio_item_2d(gen.uniform(0.1, 1.0)));
        const double energy_budget = gen.uniform(5.0, 60.0);
        const auto solution = select_presentations_2d(items, 1e12, energy_budget);
        double total_energy = 0.0;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (solution.levels[i] > 0)
                total_energy += items[i].energies[solution.levels[i] - 1];
        }
        EXPECT_LE(total_energy, energy_budget + 1e-9);
    }
}

TEST(mckp_2d, scarcer_resource_dominates_ranking) {
    // Two items: equal utility, one cheap in energy but big in bytes, the
    // other the reverse. With energy scarce, the energy-cheap item must win.
    mckp_item_2d byte_heavy;
    byte_heavy.sizes = {1000.0};
    byte_heavy.energies = {1.0};
    byte_heavy.utilities = {0.5};
    mckp_item_2d energy_heavy;
    energy_heavy.sizes = {10.0};
    energy_heavy.energies = {100.0};
    energy_heavy.utilities = {0.5};
    // Budgets: bytes plentiful (1e6), energy only 50 (fits byte_heavy only).
    const auto solution =
        select_presentations_2d({byte_heavy, energy_heavy}, 1e6, 50.0);
    EXPECT_EQ(solution.levels[0], 1u);
    EXPECT_EQ(solution.levels[1], 0u);
}

TEST(mckp_2d, skip_infeasible_keeps_searching) {
    mckp_item_2d big;
    big.sizes = {1000.0};
    big.energies = {0.0};
    big.utilities = {10.0};
    mckp_item_2d small;
    small.sizes = {10.0};
    small.energies = {0.0};
    small.utilities = {0.01};
    const auto stop = select_presentations_2d({big, small}, 100.0, 1e9);
    EXPECT_EQ(stop.upgrades, 0u); // big tops the heap, does not fit, stop
    mckp_options skip;
    skip.skip_infeasible = true;
    const auto cont = select_presentations_2d({big, small}, 100.0, 1e9, skip);
    EXPECT_EQ(cont.levels[1], 1u);
}

TEST(mckp_2d, greedy_close_to_exact_dp) {
    rng gen(7);
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<mckp_item_2d> items;
        const int n = 2 + static_cast<int>(gen.index(4));
        for (int i = 0; i < n; ++i) items.push_back(audio_item_2d(gen.uniform(0.2, 1.0)));
        const double data_budget = gen.uniform(2e5, 2e6);
        const double energy_budget = gen.uniform(10.0, 80.0);
        mckp_options skip;
        skip.skip_infeasible = true;
        const auto greedy =
            select_presentations_2d(items, data_budget, energy_budget, skip);
        const auto exact =
            mckp_exact_2d(items, data_budget, energy_budget, 25'000.0, 2.0);
        // DP rounds weights up, so its value lower-bounds the continuous
        // optimum; greedy must not be wildly below it.
        EXPECT_GE(greedy.total_utility, exact.total_utility - 1.0);
    }
}

TEST(mckp_2d_exact, solves_known_instance) {
    mckp_item_2d a;
    a.sizes = {4.0, 7.0};
    a.energies = {1.0, 5.0};
    a.utilities = {3.0, 5.0};
    mckp_item_2d b;
    b.sizes = {5.0};
    b.energies = {2.0};
    b.utilities = {4.0};
    // Data budget 9, energy budget 3: a@1 (4,1) + b@1 (5,2) = utility 7.
    const auto solution = mckp_exact_2d({a, b}, 9.0, 3.0, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(solution.total_utility, 7.0);
    EXPECT_EQ(solution.levels[0], 1u);
    EXPECT_EQ(solution.levels[1], 1u);
    // Tighter energy (2): only one of the two fits; best is b (utility 4).
    const auto tight = mckp_exact_2d({a, b}, 9.0, 2.0, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(tight.total_utility, 4.0);
}

TEST(mckp_2d, rejects_malformed_items) {
    mckp_item_2d mismatch;
    mismatch.sizes = {10.0};
    mismatch.energies = {1.0, 2.0};
    mismatch.utilities = {0.1};
    EXPECT_THROW(select_presentations_2d({mismatch}, 10.0, 10.0),
                 richnote::precondition_error);
    mckp_item_2d decreasing_energy;
    decreasing_energy.sizes = {10.0, 20.0};
    decreasing_energy.energies = {5.0, 1.0};
    decreasing_energy.utilities = {0.1, 0.2};
    EXPECT_THROW(select_presentations_2d({decreasing_energy}, 10.0, 10.0),
                 richnote::precondition_error);
    EXPECT_THROW(select_presentations_2d({}, -1.0, 0.0), richnote::precondition_error);
    EXPECT_THROW(mckp_exact_2d({}, 1.0, 1.0, 0.0, 1.0), richnote::precondition_error);
}

TEST(mckp_2d, zero_energy_budget_with_free_levels_still_works) {
    mckp_item_2d free_energy;
    free_energy.sizes = {10.0};
    free_energy.energies = {0.0};
    free_energy.utilities = {0.5};
    const auto solution = select_presentations_2d({free_energy}, 100.0, 0.0);
    EXPECT_EQ(solution.levels[0], 1u);
}

} // namespace

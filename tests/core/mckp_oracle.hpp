// Exact MCKP oracle for the test suite: exhaustive enumeration over every
// level assignment, so it is correct for real-valued sizes with no
// discretization error (unlike src/core's DP, which rounds sizes up to a
// resolution). Exponential in the item count — keep instances tiny
// (n <= 7 with the 7-level audio menu is ~2M states).
//
// Kept in tests/ on purpose: the production solver must never be validated
// against itself, and the oracle's brute force is too slow to live next to
// the hot-path code where someone might call it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mckp.hpp"
#include "core/presentation.hpp"

namespace richnote::testing {

struct oracle_solution {
    std::vector<core::level_t> levels; ///< chosen level per item (0 = skip)
    double total_size = 0.0;
    double total_utility = 0.0;
};

namespace detail {

template <typename Item>
double size_of(const Item& item, std::size_t level) {
    return level == 0 ? 0.0 : item.sizes[level - 1];
}

template <typename Item>
double utility_of(const Item& item, std::size_t level) {
    return level == 0 ? 0.0 : item.utilities[level - 1];
}

/// Depth-first enumeration with budget pruning. `energy` is nullptr for the
/// single-constraint problem.
template <typename Item>
void enumerate(const std::vector<Item>& items, std::size_t index, double size_used,
               double energy_used, double utility, double data_budget,
               const double* energy_budget, std::vector<core::level_t>& current,
               oracle_solution& best) {
    if (index == items.size()) {
        if (utility > best.total_utility ||
            (utility == best.total_utility && size_used < best.total_size)) {
            best.levels = current;
            best.total_size = size_used;
            best.total_utility = utility;
        }
        return;
    }
    const Item& item = items[index];
    for (std::size_t level = 0; level <= item.level_count(); ++level) {
        const double next_size = size_used + size_of(item, level);
        if (next_size > data_budget) break; // sizes strictly increase per level
        double next_energy = energy_used;
        if constexpr (requires { item.energies; }) {
            if (level > 0) next_energy += item.energies[level - 1];
            if (energy_budget != nullptr && next_energy > *energy_budget) continue;
        }
        current[index] = static_cast<core::level_t>(level);
        enumerate(items, index + 1, next_size, next_energy,
                  utility + utility_of(item, level), data_budget, energy_budget, current,
                  best);
    }
    current[index] = 0;
}

} // namespace detail

/// Exact optimum of the single-constraint MCKP by exhaustive enumeration.
inline oracle_solution mckp_oracle(const std::vector<core::mckp_item>& items,
                                   double budget) {
    oracle_solution best;
    best.levels.assign(items.size(), 0);
    std::vector<core::level_t> current(items.size(), 0);
    detail::enumerate(items, 0, 0.0, 0.0, 0.0, budget, nullptr, current, best);
    return best;
}

/// Exact optimum of the two-constraint (data + energy) MCKP of Eq. 2.
inline oracle_solution mckp_oracle_2d(const std::vector<core::mckp_item_2d>& items,
                                      double data_budget, double energy_budget) {
    oracle_solution best;
    best.levels.assign(items.size(), 0);
    std::vector<core::level_t> current(items.size(), 0);
    detail::enumerate(items, 0, 0.0, 0.0, 0.0, data_budget, &energy_budget, current,
                      best);
    return best;
}

} // namespace richnote::testing

// End-to-end determinism of the structured trace (DESIGN.md §9): for a
// fixed seed the merged NDJSON stream must be byte-identical across worker
// thread counts and across repeated runs — the property that makes traces
// diffable artifacts rather than logs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "obs/trace_sink.hpp"

namespace {

using richnote::core::experiment_params;
using richnote::core::experiment_setup;
using richnote::core::run_experiment;
using richnote::obs::trace_sink;

const experiment_setup& shared_setup() {
    static const experiment_setup* setup = [] {
        experiment_setup::options opts;
        opts.workload.user_count = 12;
        opts.forest.tree_count = 4;
        opts.seed = 5;
        return new experiment_setup(opts);
    }();
    return *setup;
}

std::string traced_run(std::size_t worker_threads, double fault_intensity) {
    trace_sink sink(12);
    experiment_params params;
    params.weekly_budget_mb = 3.0;
    params.seed = 9;
    params.worker_threads = worker_threads;
    params.trace = &sink;
    if (fault_intensity > 0.0) {
        richnote::faults::fault_plan_params fp;
        fp.seed = 21;
        fp.blackout_prob = 0.05 * fault_intensity;
        fp.partial_transfer_prob = 0.10 * fault_intensity;
        fp.duplicate_prob = 0.05 * fault_intensity;
        fp.crash_restart_prob = 0.02 * fault_intensity;
        params.faults = fp;
        params.retry.max_attempts = 4;
        params.retry.backoff_base_sec = 60.0;
    }
    const auto result = run_experiment(shared_setup(), params);
    EXPECT_GT(result.rounds_run, 0u);
    std::ostringstream out;
    sink.write_ndjson(out);
    return out.str();
}

TEST(trace_determinism, stream_is_byte_identical_across_thread_counts) {
    const std::string sequential = traced_run(1, 0.0);
    const std::string sharded = traced_run(3, 0.0);
    ASSERT_FALSE(sequential.empty());
    EXPECT_EQ(sequential, sharded);
}

TEST(trace_determinism, repeated_runs_at_same_seed_are_byte_identical) {
    EXPECT_EQ(traced_run(1, 0.0), traced_run(1, 0.0));
}

TEST(trace_determinism, fault_events_are_deterministic_across_threads_too) {
    const std::string sequential = traced_run(1, 1.0);
    const std::string sharded = traced_run(4, 1.0);
    ASSERT_FALSE(sequential.empty());
    // The fault run must actually contain fault-path event types.
    EXPECT_NE(sequential.find("\"type\":\"fault\""), std::string::npos);
    EXPECT_EQ(sequential, sharded);
}

TEST(trace_determinism, stream_contains_the_documented_event_vocabulary) {
    const std::string stream = traced_run(1, 0.0);
    for (const char* type : {"plan", "decision", "deliver", "round"}) {
        EXPECT_NE(stream.find("\"type\":\"" + std::string(type) + "\""),
                  std::string::npos)
            << "missing event type " << type;
    }
    // Every line is one JSON object: quick structural check.
    std::istringstream lines(stream);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"type\":"), std::string::npos);
        EXPECT_NE(line.find("\"user\":"), std::string::npos);
        EXPECT_NE(line.find("\"round\":"), std::string::npos);
    }
}

} // namespace

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/mckp.hpp"
#include "core/presentation.hpp"

namespace {

using richnote::core::layered_video_generator;
using richnote::core::level_t;

layered_video_generator default_generator() {
    return layered_video_generator(layered_video_generator::params{});
}

TEST(video_generator, produces_a_valid_presentation_set) {
    const auto set = default_generator().generate(120.0);
    ASSERT_GE(set.level_count(), 2u);
    for (level_t j = 2; j <= set.level_count(); ++j) {
        EXPECT_GT(set.size(j), set.size(j - 1));
        EXPECT_GT(set.utility(j), set.utility(j - 1));
    }
}

TEST(video_generator, first_level_is_metadata) {
    const auto set = default_generator().generate(120.0);
    EXPECT_EQ(set.at(1).label, "meta");
    EXPECT_DOUBLE_EQ(set.size(1), 400.0);
    EXPECT_DOUBLE_EQ(set.utility(1), 0.02);
}

TEST(video_generator, dominated_quality_duration_combos_are_pruned) {
    // 4 durations x 3 layers + meta = 13 candidates; the Pareto frontier
    // must be strictly smaller (high-bitrate short clips are dominated by
    // low-bitrate longer ones at similar sizes).
    const auto set = default_generator().generate(0.0);
    EXPECT_LT(set.level_count(), 13u);
}

TEST(video_generator, clip_size_arithmetic) {
    const auto gen = default_generator();
    // 6 s at 1200 kbps = 6 * 1200 * 1000 / 8 = 900 KB + 400 B metadata.
    EXPECT_DOUBLE_EQ(gen.clip_size_bytes(6.0, 1200.0), 400.0 + 900'000.0);
}

TEST(video_generator, utility_monotone_in_duration_and_quality) {
    const auto gen = default_generator();
    EXPECT_LT(gen.clip_utility(3.0, 0.75), gen.clip_utility(12.0, 0.75));
    EXPECT_LT(gen.clip_utility(12.0, 0.45), gen.clip_utility(12.0, 1.0));
    EXPECT_LE(gen.clip_utility(24.0, 1.0), 1.0);
}

TEST(video_generator, short_videos_clip_durations) {
    const auto set = default_generator().generate(5.0);
    for (level_t j = 1; j <= set.level_count(); ++j)
        EXPECT_LE(set.at(j).preview_sec, 5.0);
}

TEST(video_generator, top_level_is_best_quality_longest_clip) {
    const auto set = default_generator().generate(0.0);
    const auto& top = set.at(static_cast<level_t>(set.level_count()));
    EXPECT_EQ(top.label, "720p/24s");
    EXPECT_DOUBLE_EQ(top.utility, 1.0);
}

TEST(video_generator, rejects_invalid_params) {
    layered_video_generator::params p;
    p.layers.clear();
    EXPECT_THROW(layered_video_generator{p}, richnote::precondition_error);

    p = layered_video_generator::params{};
    p.layers[1].bitrate_kbps = p.layers[0].bitrate_kbps; // not increasing
    EXPECT_THROW(layered_video_generator{p}, richnote::precondition_error);

    p = layered_video_generator::params{};
    p.layers[2].quality = 1.5;
    EXPECT_THROW(layered_video_generator{p}, richnote::precondition_error);

    p = layered_video_generator::params{};
    p.clip_durations_sec = {-1.0};
    EXPECT_THROW(layered_video_generator{p}, richnote::precondition_error);
}

TEST(video_generator, feeds_the_scheduler_like_any_generator) {
    // The generator interface contract: the output drops straight into an
    // mckp item and the greedy can select over it.
    const auto set = default_generator().generate(60.0);
    const auto item = richnote::core::make_mckp_item(set, 0.8);
    const auto solution = richnote::core::select_presentations({item}, 1e9);
    EXPECT_EQ(solution.levels[0], set.level_count());
}

} // namespace

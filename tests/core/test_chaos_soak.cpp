// Chaos soak: hundreds of rounds under a mixed fault plan (blackouts,
// partial transfers, duplicated arrivals, brownouts, crash-restarts) with
// the pipeline invariants checked at every round boundary:
//   - the data budget never goes negative;
//   - queue_bytes() equals the sum over the queued items;
//   - nothing is delivered twice (conservation of admitted items);
//   - Q(t) and P(t) stay bounded.
// Plus the determinism guarantees at experiment scale: a crash-only fault
// plan is lossless (identical to the fault-free run), and a full-chaos run
// is bit-identical however users are sharded across worker threads.
#include "core/broker.hpp"
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "core/utility.hpp"
#include "faults/fault_plan.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::broker;
using richnote::core::broker_params;
using richnote::core::constant_content_utility;
using richnote::core::experiment_params;
using richnote::core::experiment_setup;
using richnote::core::fifo_scheduler;
using richnote::core::metrics_recorder;
using richnote::core::queue_scheduler_base;
using richnote::core::retry_policy;
using richnote::core::richnote_scheduler;
using richnote::core::run_experiment;
using richnote::core::scheduler_kind;
using richnote::faults::fault_plan;
using richnote::faults::fault_plan_params;
namespace t = richnote::sim;

fault_plan_params mixed_chaos(std::uint64_t seed) {
    fault_plan_params fp;
    fp.seed = seed;
    fp.blackout_prob = 0.05;
    fp.blackout_rounds = 3;
    fp.partial_transfer_prob = 0.20;
    fp.min_transfer_fraction = 0.25;
    fp.duplicate_prob = 0.10;
    fp.reorder_prob = 0.10;
    fp.brownout_prob = 0.05;
    fp.brownout_rounds = 2;
    fp.crash_restart_prob = 0.03;
    return fp;
}

// ------------------------------------------------ broker-level soak ----

class chaos_soak : public ::testing::Test {
protected:
    chaos_soak() : generator_(audio_preview_generator::params{}), utility_(0.5) {
        richnote::trace::catalog_params cp;
        cp.artist_count = 20;
        richnote::rng cat_gen(3);
        catalog_ = std::make_unique<richnote::trace::catalog>(cp, cat_gen);
    }

    broker make_broker(metrics_recorder& metrics, const fault_plan& plan,
                       std::unique_ptr<richnote::core::scheduler> sched,
                       double theta_bytes) {
        broker_params bp;
        bp.budget_per_round_bytes = theta_bytes;
        bp.faults = &plan;
        richnote::rng bat_gen(7);
        t::battery_params batp;
        batp.phase_jitter_hours = 0;
        auto battery = std::make_unique<t::battery_model>(batp, bat_gen);
        return broker(0, bp, std::move(sched), generator_, utility_, energy_,
                      t::markov_network_model::fixed(t::net_state::cell),
                      std::move(battery), *catalog_, metrics, 99);
    }

    richnote::trace::notification make_note(std::uint64_t id, double created_at) {
        richnote::trace::notification n;
        n.id = id;
        n.recipient = 0;
        n.track = 0;
        n.created_at = created_at;
        n.features.social_tie = 0.5;
        return n;
    }

    /// Drives `rounds` rounds of mixed chaos against one broker, checking
    /// every invariant at every round boundary. Returns the final metrics
    /// conservation terms via the out-params.
    void soak(broker& b, metrics_recorder& metrics, int rounds) {
        const auto* qs = dynamic_cast<const queue_scheduler_base*>(&b.sched());
        ASSERT_NE(qs, nullptr);

        double last_delivered = 0.0;
        for (int r = 0; r < rounds; ++r) {
            const double now = r * t::default_round;
            const auto id = static_cast<std::uint64_t>(r);
            b.admit(make_note(id, now));
            // An at-least-once upstream replays every 7th publish.
            if (r % 7 == 3) b.admit(make_note(id, now));

            b.run_round(now);

            // Invariant: the data budget is never driven negative.
            ASSERT_GE(b.data_budget(), -1e-9) << "round " << r;

            // Invariant: queue_bytes() matches the queue contents exactly.
            double sum = 0.0;
            for (const auto& item : qs->queued_items())
                sum += item.presentations.total_size();
            ASSERT_NEAR(qs->queue_bytes(), sum, 1e-6) << "round " << r;

            // Invariant: deliveries are monotone and never exceed the
            // distinct items admitted (no double delivery).
            const double delivered = metrics.total_delivered();
            ASSERT_GE(delivered, last_delivered) << "round " << r;
            ASSERT_LE(delivered, metrics.total_arrived()) << "round " << r;
            last_delivered = delivered;

            // Invariant: Q(t) stays bounded (delivery keeps up with the
            // one-item-per-round admission despite the injected faults).
            ASSERT_LE(qs->queue_size(), 100u) << "round " << r;

            // Invariant: P(t) stays bounded.
            ASSERT_LE(std::fabs(b.sched().energy_credit_joules()), 1e6)
                << "round " << r;
        }
    }

    audio_preview_generator generator_;
    constant_content_utility utility_;
    richnote::energy::energy_model energy_;
    std::unique_ptr<richnote::trace::catalog> catalog_;
};

TEST_F(chaos_soak, fifo_survives_600_rounds_of_mixed_faults) {
    const fault_plan plan(mixed_chaos(17));
    metrics_recorder metrics(1, 6);
    auto sched = std::make_unique<fifo_scheduler>(3, energy_);
    retry_policy retry;
    retry.max_attempts = 6;
    retry.backoff_base_sec = 1800.0;
    retry.backoff_cap_sec = 2.0 * t::default_round;
    sched->set_retry_policy(retry);
    auto b = make_broker(metrics, plan, std::move(sched), 600'000.0);

    const int rounds = 600;
    soak(b, metrics, rounds);

    // The chaos actually happened.
    const auto& u = metrics.user(0);
    EXPECT_GT(u.faults.faults_injected, 0u) << "blackouts/brownouts should fire";
    EXPECT_GT(u.faults.transfer_retries, 0u) << "partial transfers should fire";
    EXPECT_GT(u.faults.duplicates_suppressed, 0u);
    EXPECT_GT(u.faults.crash_restarts, 0u);
    EXPECT_GT(u.faults.resumed_bytes, 0.0) << "resume from the high-water mark";

    // Conservation: every admitted item is exactly one of delivered,
    // still queued, or dead-lettered (FIFO never expires or declines).
    const auto* qs = dynamic_cast<const queue_scheduler_base*>(&b.sched());
    ASSERT_NE(qs, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(metrics.total_arrived()),
              u.delivered + qs->queue_size() + qs->dead_lettered());
    // Most items still make it through despite the chaos.
    EXPECT_GT(metrics.delivery_ratio(), 0.7);
}

TEST_F(chaos_soak, richnote_survives_600_rounds_of_mixed_faults) {
    const fault_plan plan(mixed_chaos(23));
    metrics_recorder metrics(1, 6);
    richnote_scheduler::params rp;
    rp.max_queue_age_sec = 72.0 * 3600.0; // exercise expiry under chaos too
    auto sched = std::make_unique<richnote_scheduler>(rp, energy_);
    auto* sched_raw = sched.get();
    retry_policy retry;
    retry.max_attempts = 6;
    retry.backoff_base_sec = 1800.0;
    retry.backoff_cap_sec = 2.0 * t::default_round;
    sched->set_retry_policy(retry);
    auto b = make_broker(metrics, plan, std::move(sched), 600'000.0);

    const int rounds = 600;
    soak(b, metrics, rounds);

    const auto& u = metrics.user(0);
    EXPECT_GT(u.faults.faults_injected, 0u);
    EXPECT_GT(u.faults.transfer_retries, 0u);
    EXPECT_GT(u.faults.crash_restarts, 0u);

    // Conservation with the RichNote drop paths included.
    EXPECT_EQ(static_cast<std::uint64_t>(metrics.total_arrived()),
              u.delivered + sched_raw->queue_size() + sched_raw->dead_lettered() +
                  sched_raw->expired_items() + sched_raw->dropped_low_utility());
    EXPECT_GT(metrics.delivery_ratio(), 0.7);
}

// --------------------------------------- experiment-scale determinism ----

class chaos_experiment : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        experiment_setup::options opts;
        opts.workload.user_count = 40;
        opts.workload.catalog.artist_count = 80;
        opts.workload.playlist_count = 15;
        opts.forest.tree_count = 10;
        opts.seed = 21;
        setup_ = new experiment_setup(opts);
    }
    static void TearDownTestSuite() {
        delete setup_;
        setup_ = nullptr;
    }

    static experiment_params chaos_params(double budget_mb = 10.0) {
        experiment_params p;
        p.kind = scheduler_kind::richnote;
        p.weekly_budget_mb = budget_mb;
        p.seed = 5;
        p.faults = mixed_chaos(7);
        p.retry.max_attempts = 6;
        p.retry.backoff_base_sec = 1200.0;
        return p;
    }

    static experiment_setup* setup_;
};

experiment_setup* chaos_experiment::setup_ = nullptr;

TEST_F(chaos_experiment, crash_restarts_are_lossless_at_experiment_scale) {
    // A fault plan injecting ONLY crash-restarts must reproduce the
    // fault-free run exactly: recovery from checkpoints loses nothing.
    auto faulty = chaos_params();
    faulty.faults = fault_plan_params{};
    faulty.faults.seed = 7;
    faulty.faults.crash_restart_prob = 0.2;
    auto clean = chaos_params();
    clean.faults = fault_plan_params{};
    clean.retry = retry_policy{};

    const auto a = run_experiment(*setup_, clean);
    const auto b = run_experiment(*setup_, faulty);

    EXPECT_GT(b.faults.crash_restarts, 100u) << "the plan should crash often";
    EXPECT_NEAR(a.total_utility, b.total_utility, 1e-9);
    EXPECT_NEAR(a.delivered_mb, b.delivered_mb, 1e-9);
    EXPECT_NEAR(a.energy_kj, b.energy_kj, 1e-9);
    EXPECT_NEAR(a.precision, b.precision, 1e-9);
    EXPECT_NEAR(a.mean_delay_min, b.mean_delay_min, 1e-9);
}

TEST_F(chaos_experiment, full_chaos_is_deterministic_across_worker_counts) {
    // Same seed + same fault plan => identical results no matter how users
    // are sharded (every fault query is a pure function of the seed).
    auto p1 = chaos_params();
    auto p4 = chaos_params();
    p4.worker_threads = 4;
    const auto sequential = run_experiment(*setup_, p1);
    const auto threaded = run_experiment(*setup_, p4);

    EXPECT_DOUBLE_EQ(sequential.total_utility, threaded.total_utility);
    EXPECT_DOUBLE_EQ(sequential.delivered_mb, threaded.delivered_mb);
    EXPECT_DOUBLE_EQ(sequential.energy_kj, threaded.energy_kj);
    EXPECT_DOUBLE_EQ(sequential.precision, threaded.precision);
    EXPECT_EQ(sequential.faults.faults_injected, threaded.faults.faults_injected);
    EXPECT_EQ(sequential.faults.transfer_retries, threaded.faults.transfer_retries);
    EXPECT_EQ(sequential.faults.dead_lettered, threaded.faults.dead_lettered);
    EXPECT_EQ(sequential.faults.duplicates_suppressed,
              threaded.faults.duplicates_suppressed);
    EXPECT_EQ(sequential.faults.crash_restarts, threaded.faults.crash_restarts);
    EXPECT_DOUBLE_EQ(sequential.faults.partial_bytes, threaded.faults.partial_bytes);
    EXPECT_DOUBLE_EQ(sequential.faults.resumed_bytes, threaded.faults.resumed_bytes);
}

TEST_F(chaos_experiment, chaos_degrades_delivery_but_counters_surface_it) {
    const auto clean = run_experiment(*setup_, [] {
        auto p = chaos_params();
        p.faults = fault_plan_params{};
        p.retry = retry_policy{};
        return p;
    }());
    const auto chaotic = run_experiment(*setup_, chaos_params());

    // Every fault class fired and was counted.
    EXPECT_GT(chaotic.faults.faults_injected, 0u);
    EXPECT_GT(chaotic.faults.transfer_retries, 0u);
    EXPECT_GT(chaotic.faults.duplicates_suppressed, 0u);
    EXPECT_GT(chaotic.faults.crash_restarts, 0u);
    EXPECT_GT(chaotic.faults.resumed_bytes, 0.0);
    EXPECT_EQ(clean.faults.faults_injected, 0u);
    EXPECT_EQ(clean.faults.transfer_retries, 0u);

    // Under chaos RichNote still delivers most items — resilience, not
    // collapse — but no more than the fault-free run.
    EXPECT_GT(chaotic.delivery_ratio, 0.8);
    EXPECT_LE(chaotic.delivery_ratio, clean.delivery_ratio + 1e-9);
}

} // namespace

// Parameterized property sweeps over the MCKP solvers: invariants that
// must hold for every instance size and budget regime.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/mckp.hpp"
#include "core/presentation.hpp"

namespace {

using richnote::rng;
using richnote::core::audio_preview_generator;
using richnote::core::make_mckp_item;
using richnote::core::mckp_item;
using richnote::core::mckp_options;
using richnote::core::select_presentations;

std::vector<mckp_item> random_instance(std::size_t n, std::uint64_t seed) {
    static const audio_preview_generator generator{audio_preview_generator::params{}};
    rng gen(seed);
    std::vector<mckp_item> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Mix of full menus and clipped (short-track) menus.
        const double track_sec = gen.bernoulli(0.2) ? gen.uniform(6.0, 35.0) : 276.0;
        items.push_back(
            make_mckp_item(generator.generate(track_sec), gen.uniform(0.05, 1.0)));
    }
    return items;
}

double menu_total(const std::vector<mckp_item>& items) {
    double total = 0;
    for (const auto& item : items) total += item.sizes.back();
    return total;
}

/// (instance size, budget as a fraction of the max-level total).
class mckp_sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(mckp_sweep, solution_is_feasible_and_consistent) {
    const auto [n, fraction] = GetParam();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto items = random_instance(n, seed);
        const double budget = fraction * menu_total(items);
        const auto solution = select_presentations(items, budget);

        ASSERT_EQ(solution.levels.size(), n);
        double recomputed_size = 0;
        double recomputed_utility = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto level = solution.levels[i];
            ASSERT_LE(level, items[i].level_count());
            if (level > 0) {
                recomputed_size += items[i].sizes[level - 1];
                recomputed_utility += items[i].utilities[level - 1];
            }
        }
        EXPECT_LE(recomputed_size, budget + 1e-6);
        EXPECT_NEAR(recomputed_size, solution.total_size, 1e-6);
        EXPECT_NEAR(recomputed_utility, solution.total_utility, 1e-6);
        EXPECT_GE(solution.fractional_bound, solution.total_utility - 1e-9);
    }
}

TEST_P(mckp_sweep, utility_is_monotone_in_budget) {
    const auto [n, fraction] = GetParam();
    const auto items = random_instance(n, 42);
    const double budget = fraction * menu_total(items);
    const double lo = select_presentations(items, budget).total_utility;
    const double hi = select_presentations(items, budget * 1.5).total_utility;
    EXPECT_GE(hi, lo - 1e-9);
}

TEST_P(mckp_sweep, skip_infeasible_never_does_worse) {
    const auto [n, fraction] = GetParam();
    for (std::uint64_t seed = 10; seed <= 14; ++seed) {
        const auto items = random_instance(n, seed);
        const double budget = fraction * menu_total(items);
        const auto stop = select_presentations(items, budget);
        mckp_options skip;
        skip.skip_infeasible = true;
        const auto cont = select_presentations(items, budget, skip);
        EXPECT_GE(cont.total_utility, stop.total_utility - 1e-9);
        EXPECT_LE(cont.total_size, budget + 1e-6);
    }
}

TEST_P(mckp_sweep, full_budget_maxes_every_item) {
    const auto [n, fraction] = GetParam();
    (void)fraction;
    const auto items = random_instance(n, 7);
    const auto solution = select_presentations(items, menu_total(items) + 1.0);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(solution.levels[i], items[i].level_count());
}

INSTANTIATE_TEST_SUITE_P(
    sizes_and_budget_fractions, mckp_sweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{5}, std::size_t{40},
                                         std::size_t{200}),
                       ::testing::Values(0.01, 0.1, 0.5, 0.9)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, double>>& info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "_f" +
               std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

} // namespace

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/utility.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::core::online_content_utility;

richnote::trace::notification feedback_note(double tie, bool clicked) {
    richnote::trace::notification n;
    n.features.social_tie = tie;
    n.features.track_popularity = 50;
    n.features.album_popularity = 50;
    n.features.artist_popularity = 50;
    n.attended = true;
    n.clicked = clicked;
    return n;
}

online_content_utility::params quick_params() {
    online_content_utility::params p;
    p.min_rows = 10;
    p.retrain_every = 1;
    p.forest.tree_count = 10;
    return p;
}

TEST(online_learning, starts_at_the_prior) {
    online_content_utility model(quick_params());
    EXPECT_FALSE(model.trained());
    EXPECT_DOUBLE_EQ(model.content_utility(feedback_note(0.9, true)), 0.5);
}

TEST(online_learning, refits_once_enough_feedback_arrives) {
    online_content_utility model(quick_params());
    // Strong signal: high ties click, low ties hover.
    for (int i = 0; i < 30; ++i) {
        model.observe(feedback_note(0.9, true));
        model.observe(feedback_note(0.1, false));
    }
    EXPECT_TRUE(model.on_round_end());
    EXPECT_TRUE(model.trained());
    EXPECT_EQ(model.refits(), 1u);
    EXPECT_GT(model.content_utility(feedback_note(0.9, true)),
              model.content_utility(feedback_note(0.1, false)));
}

TEST(online_learning, waits_for_min_rows_and_both_classes) {
    online_content_utility model(quick_params());
    for (int i = 0; i < 5; ++i) model.observe(feedback_note(0.9, true));
    EXPECT_FALSE(model.on_round_end()); // too few rows
    for (int i = 0; i < 20; ++i) model.observe(feedback_note(0.8, true));
    EXPECT_FALSE(model.on_round_end()); // one class only
    for (int i = 0; i < 5; ++i) model.observe(feedback_note(0.1, false));
    EXPECT_TRUE(model.on_round_end());
}

TEST(online_learning, respects_the_retrain_interval) {
    auto p = quick_params();
    p.retrain_every = 3;
    online_content_utility model(p);
    for (int i = 0; i < 20; ++i) {
        model.observe(feedback_note(0.9, true));
        model.observe(feedback_note(0.1, false));
    }
    EXPECT_FALSE(model.on_round_end());
    EXPECT_FALSE(model.on_round_end());
    EXPECT_TRUE(model.on_round_end()); // third round: due
    // No new feedback: the next due round must skip the (pointless) refit.
    EXPECT_FALSE(model.on_round_end());
    EXPECT_FALSE(model.on_round_end());
    EXPECT_FALSE(model.on_round_end());
    EXPECT_EQ(model.refits(), 1u);
}

TEST(online_learning, rejects_unattended_feedback_and_bad_params) {
    online_content_utility model(quick_params());
    richnote::trace::notification unattended;
    unattended.attended = false;
    EXPECT_THROW(model.observe(unattended), richnote::precondition_error);

    online_content_utility::params bad = quick_params();
    bad.prior = 1.5;
    EXPECT_THROW(online_content_utility{bad}, richnote::precondition_error);
    bad = quick_params();
    bad.retrain_every = 0;
    EXPECT_THROW(online_content_utility{bad}, richnote::precondition_error);
}

TEST(online_learning, end_to_end_beats_the_constant_prior) {
    richnote::core::experiment_setup::options opts;
    opts.workload.user_count = 40;
    opts.workload.catalog.artist_count = 60;
    opts.workload.playlist_count = 10;
    opts.forest.tree_count = 8;
    opts.seed = 31;
    const richnote::core::experiment_setup setup(opts);

    auto run_with = [&](std::size_t retrain_every) {
        richnote::core::experiment_params params;
        params.kind = richnote::core::scheduler_kind::richnote;
        params.weekly_budget_mb = 10.0;
        params.online_learning = true;
        params.online.retrain_every = retrain_every;
        params.online.forest.tree_count = 8;
        params.seed = 7;
        return run_experiment(setup, params);
    };
    const auto learning = run_with(24);
    const auto frozen = run_with(100000); // never refits: constant prior
    // Learned U_c concentrates budget on clickable items: clicked-item
    // utility must improve over the flat prior.
    EXPECT_GT(learning.utility_clicked, frozen.utility_clicked);
}

} // namespace

// Equivalence suite for the allocation-free MCKP overloads: solving into a
// reused mckp_scratch must produce exactly the solution the fresh-allocation
// path returns, on randomized instances, for both solvers and both
// infeasible-upgrade policies.
#include "core/mckp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace {

using richnote::rng;
using namespace richnote::core;

std::vector<mckp_item> random_instance(rng& gen, std::size_t max_items = 12) {
    std::vector<mckp_item> items(gen.index(max_items + 1));
    for (mckp_item& item : items) {
        const std::size_t levels = 1 + gen.index(4);
        double size = 0.0;
        for (std::size_t j = 0; j < levels; ++j) {
            size += gen.uniform(0.5, 20.0);
            item.sizes.push_back(size);
            // Adjusted utilities may be negative (Eq. 7); exercise that.
            item.utilities.push_back(gen.uniform(-2.0, 10.0));
        }
    }
    return items;
}

std::vector<mckp_item_2d> random_instance_2d(rng& gen, std::size_t max_items = 10) {
    std::vector<mckp_item_2d> items(gen.index(max_items + 1));
    for (mckp_item_2d& item : items) {
        const std::size_t levels = 1 + gen.index(4);
        double size = 0.0;
        double energy = 0.0;
        for (std::size_t j = 0; j < levels; ++j) {
            size += gen.uniform(0.5, 20.0);
            energy += gen.uniform(0.0, 5.0);
            item.sizes.push_back(size);
            item.energies.push_back(energy);
            item.utilities.push_back(gen.uniform(-2.0, 10.0));
        }
    }
    return items;
}

void expect_same(const mckp_solution& fresh, const mckp_solution& scratch) {
    EXPECT_EQ(scratch.levels, fresh.levels);
    EXPECT_EQ(scratch.total_size, fresh.total_size);
    EXPECT_EQ(scratch.total_utility, fresh.total_utility);
    EXPECT_EQ(scratch.upgrades, fresh.upgrades);
    EXPECT_EQ(scratch.budget_exhausted, fresh.budget_exhausted);
    EXPECT_EQ(scratch.fractional_bound, fresh.fractional_bound);
}

TEST(mckp_scratch, matches_fresh_path_on_randomized_instances) {
    rng gen(101);
    mckp_scratch scratch; // deliberately reused across every instance
    for (int trial = 0; trial < 200; ++trial) {
        const auto items = random_instance(gen);
        const double budget = gen.uniform(0.0, 80.0);
        mckp_options options;
        options.skip_infeasible = trial % 2 == 1;
        const mckp_solution fresh = select_presentations(items, budget, options);
        const mckp_solution& reused =
            select_presentations(items, budget, options, scratch);
        expect_same(fresh, reused);
    }
}

TEST(mckp_scratch, matches_fresh_path_on_randomized_2d_instances) {
    rng gen(202);
    mckp_scratch scratch;
    for (int trial = 0; trial < 200; ++trial) {
        const auto items = random_instance_2d(gen);
        const double data_budget = gen.uniform(0.0, 80.0);
        const double energy_budget = gen.uniform(0.0, 15.0);
        mckp_options options;
        options.skip_infeasible = trial % 2 == 1;
        const mckp_solution fresh =
            select_presentations_2d(items, data_budget, energy_budget, options);
        const mckp_solution& reused =
            select_presentations_2d(items, data_budget, energy_budget, options, scratch);
        expect_same(fresh, reused);
    }
}

TEST(mckp_scratch, shrinking_instances_do_not_leak_prior_state) {
    // A big instance followed by a tiny one: stale levels/heap entries from
    // the big solve must not bleed into the small solution.
    rng gen(303);
    mckp_scratch scratch;
    const auto big = random_instance(gen, 12);
    select_presentations(big, 50.0, {}, scratch);

    std::vector<mckp_item> tiny(1);
    tiny[0].sizes = {4.0};
    tiny[0].utilities = {1.0};
    const mckp_solution fresh = select_presentations(tiny, 10.0);
    const mckp_solution& reused = select_presentations(tiny, 10.0, {}, scratch);
    expect_same(fresh, reused);
    EXPECT_EQ(reused.levels.size(), 1u);

    const mckp_solution empty_fresh = select_presentations({}, 10.0);
    const mckp_solution& empty_reused = select_presentations({}, 10.0, {}, scratch);
    expect_same(empty_fresh, empty_reused);
    EXPECT_TRUE(empty_reused.levels.empty());
}

} // namespace

#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using richnote::core::metrics_recorder;
using richnote::core::planned_delivery;
using richnote::trace::notification;

notification make_note(std::uint64_t id, richnote::trace::user_id user, bool clicked,
                       double created_at = 0.0, double clicked_at = 1e9) {
    notification n;
    n.id = id;
    n.recipient = user;
    n.created_at = created_at;
    n.attended = clicked;
    n.clicked = clicked;
    n.clicked_at = clicked_at;
    return n;
}

planned_delivery make_delivery(const notification& n, richnote::core::level_t level,
                               double size, double utility) {
    planned_delivery d;
    d.item_id = n.id;
    d.level = level;
    d.size_bytes = size;
    d.utility = utility;
    d.note = n;
    return d;
}

TEST(metrics, arrivals_count_totals_and_clicks) {
    metrics_recorder m(2, 6);
    m.on_arrival(make_note(0, 0, true));
    m.on_arrival(make_note(1, 0, false));
    m.on_arrival(make_note(2, 1, true));
    EXPECT_DOUBLE_EQ(m.total_arrived(), 3.0);
    EXPECT_EQ(m.user(0).arrived, 2u);
    EXPECT_EQ(m.user(0).clicked_total, 1u);
    EXPECT_EQ(m.user(1).clicked_total, 1u);
}

TEST(metrics, delivery_ratio_and_bytes) {
    metrics_recorder m(1, 6);
    const auto n0 = make_note(0, 0, false);
    const auto n1 = make_note(1, 0, false);
    m.on_arrival(n0);
    m.on_arrival(n1);
    m.on_delivery(make_delivery(n0, 2, 1000.0, 0.3), 10.0, 5.0, true);
    EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.5);
    EXPECT_DOUBLE_EQ(m.total_bytes_delivered(), 1000.0);
    EXPECT_DOUBLE_EQ(m.total_metered_bytes(), 1000.0);
    EXPECT_DOUBLE_EQ(m.total_utility(), 0.3);
    EXPECT_DOUBLE_EQ(m.total_energy_joules(), 5.0);
}

TEST(metrics, unmetered_bytes_are_separated) {
    metrics_recorder m(1, 6);
    const auto n = make_note(0, 0, false);
    m.on_arrival(n);
    m.on_delivery(make_delivery(n, 1, 500.0, 0.1), 1.0, 1.0, false);
    EXPECT_DOUBLE_EQ(m.total_bytes_delivered(), 500.0);
    EXPECT_DOUBLE_EQ(m.total_metered_bytes(), 0.0);
}

TEST(metrics, precision_requires_delivery_before_click) {
    metrics_recorder m(1, 6);
    const auto early = make_note(0, 0, true, 0.0, 100.0);
    const auto late = make_note(1, 0, true, 0.0, 100.0);
    m.on_arrival(early);
    m.on_arrival(late);
    m.on_delivery(make_delivery(early, 1, 10, 0.1), 50.0, 0.0, true);  // before click
    m.on_delivery(make_delivery(late, 1, 10, 0.1), 200.0, 0.0, true);  // after click
    EXPECT_DOUBLE_EQ(m.precision(), 0.5); // one of two deliveries before click
    EXPECT_DOUBLE_EQ(m.recall(), 1.0);    // both clicked items delivered
}

TEST(metrics, recall_counts_clicked_deliveries_regardless_of_time) {
    metrics_recorder m(1, 6);
    const auto clicked = make_note(0, 0, true, 0.0, 10.0);
    const auto unclicked = make_note(1, 0, false);
    m.on_arrival(clicked);
    m.on_arrival(unclicked);
    m.on_delivery(make_delivery(clicked, 1, 10, 0.2), 50.0, 0.0, true); // after click
    EXPECT_DOUBLE_EQ(m.recall(), 1.0);
    EXPECT_DOUBLE_EQ(m.precision(), 0.0);
    EXPECT_DOUBLE_EQ(m.total_utility_clicked(), 0.2);
}

TEST(metrics, queuing_delay_statistics) {
    metrics_recorder m(1, 6);
    const auto n0 = make_note(0, 0, false, 100.0);
    const auto n1 = make_note(1, 0, false, 100.0);
    m.on_arrival(n0);
    m.on_arrival(n1);
    m.on_delivery(make_delivery(n0, 1, 10, 0.1), 160.0, 0.0, true); // 60 s
    m.on_delivery(make_delivery(n1, 1, 10, 0.1), 280.0, 0.0, true); // 180 s
    EXPECT_DOUBLE_EQ(m.mean_queuing_delay_sec(), 120.0);
}

TEST(metrics, level_mix_fractions_sum_to_one) {
    metrics_recorder m(1, 6);
    std::vector<notification> notes;
    for (std::uint64_t i = 0; i < 4; ++i) {
        notes.push_back(make_note(i, 0, false));
        m.on_arrival(notes.back());
    }
    m.on_delivery(make_delivery(notes[0], 1, 10, 0.1), 1.0, 0.0, true);
    m.on_delivery(make_delivery(notes[1], 6, 10, 0.1), 1.0, 0.0, true);
    m.on_delivery(make_delivery(notes[2], 6, 10, 0.1), 1.0, 0.0, true);
    const auto mix = m.level_mix();
    ASSERT_EQ(mix.size(), 7u);
    EXPECT_DOUBLE_EQ(mix[0], 0.25); // one undelivered
    EXPECT_DOUBLE_EQ(mix[1], 0.25);
    EXPECT_DOUBLE_EQ(mix[6], 0.5);
    double total = 0;
    for (double f : mix) total += f;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(metrics, session_overhead_adds_energy_only) {
    metrics_recorder m(1, 6);
    m.on_session_overhead(0, 12.5);
    EXPECT_DOUBLE_EQ(m.total_energy_joules(), 12.5);
    EXPECT_DOUBLE_EQ(m.total_bytes_delivered(), 0.0);
}

TEST(metrics, user_categories_bucket_by_arrivals) {
    metrics_recorder m(4, 6);
    // Users 0..3 receive 1, 1, 3, 5 arrivals respectively.
    std::uint64_t id = 0;
    const std::vector<int> arrivals = {1, 1, 3, 5};
    for (richnote::trace::user_id u = 0; u < 4; ++u) {
        for (int k = 0; k < arrivals[u]; ++k) {
            const auto n = make_note(id++, u, false);
            m.on_arrival(n);
            m.on_delivery(make_delivery(n, 1, 10, 1.0), 1.0, 0.0, true);
        }
    }
    const auto rows = m.utility_by_user_category({1, 3});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].users, 2u); // <=1 arrival
    EXPECT_EQ(rows[1].users, 1u); // 2..3
    EXPECT_EQ(rows[2].users, 1u); // >3
    EXPECT_DOUBLE_EQ(rows[0].mean_utility, 1.0);
    EXPECT_DOUBLE_EQ(rows[2].mean_utility, 5.0);
    EXPECT_EQ(rows[2].label, ">3");
}

TEST(metrics, average_utility_per_delivery) {
    metrics_recorder m(1, 6);
    const auto n0 = make_note(0, 0, false);
    const auto n1 = make_note(1, 0, false);
    m.on_arrival(n0);
    m.on_arrival(n1);
    m.on_delivery(make_delivery(n0, 1, 10, 0.2), 1.0, 0.0, true);
    m.on_delivery(make_delivery(n1, 1, 10, 0.6), 1.0, 0.0, true);
    EXPECT_DOUBLE_EQ(m.average_utility_per_delivery(), 0.4);
}

TEST(metrics, empty_recorder_returns_zeroes) {
    metrics_recorder m(2, 6);
    EXPECT_DOUBLE_EQ(m.delivery_ratio(), 0.0);
    EXPECT_DOUBLE_EQ(m.precision(), 0.0);
    EXPECT_DOUBLE_EQ(m.recall(), 0.0);
    EXPECT_DOUBLE_EQ(m.mean_queuing_delay_sec(), 0.0);
    EXPECT_DOUBLE_EQ(m.average_utility_per_delivery(), 0.0);
}

TEST(metrics, rejects_bad_construction_and_ranges) {
    EXPECT_THROW(metrics_recorder(0, 6), richnote::precondition_error);
    EXPECT_THROW(metrics_recorder(1, 0), richnote::precondition_error);
    metrics_recorder m(1, 6);
    EXPECT_THROW(m.on_arrival(make_note(0, 5, false)), richnote::precondition_error);
    const auto n = make_note(0, 0, false);
    EXPECT_THROW(m.on_delivery(make_delivery(n, 7, 10, 0.1), 1.0, 0.0, true),
                 richnote::precondition_error);
    EXPECT_THROW(m.utility_by_user_category({}), richnote::precondition_error);
    EXPECT_THROW(m.utility_by_user_category({5, 2}), richnote::precondition_error);
}

} // namespace

// Golden regression tests: the fig3 / fig4 / fault-tolerance pipelines are
// replayed at tiny scale with fixed seeds and their canonical %.17g
// serialization is byte-compared against checked-in reference files under
// tests/data/golden/. Any change to workload generation, training,
// scheduling, fault injection or metrics aggregation that shifts a single
// bit of output fails here with a diff-able artifact.
//
// To re-baseline intentionally:  RICHNOTE_UPDATE_GOLDEN=1 ctest -R golden
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "faults/fault_plan.hpp"

#ifndef RICHNOTE_SOURCE_DIR
#error "tests must be compiled with RICHNOTE_SOURCE_DIR"
#endif

namespace {

using richnote::core::experiment_params;
using richnote::core::experiment_result;
using richnote::core::experiment_setup;
using richnote::core::run_experiment;
using richnote::core::scheduler_kind;

std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string golden_path(const std::string& name) {
    return std::string(RICHNOTE_SOURCE_DIR) + "/tests/data/golden/" + name;
}

void compare_or_update(const std::string& name, const std::string& actual) {
    const std::string path = golden_path(name);
    if (std::getenv("RICHNOTE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "updated golden " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " — run with RICHNOTE_UPDATE_GOLDEN=1 to create it";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "output of " << name << " drifted from the checked-in golden; "
        << "if the change is intentional, re-baseline with RICHNOTE_UPDATE_GOLDEN=1";
}

/// One tiny shared setup for every golden (same pattern as the real bench
/// harnesses: one workload + model reused across sweep points).
const experiment_setup& shared_setup() {
    static const experiment_setup* setup = [] {
        experiment_setup::options opts;
        opts.workload.user_count = 15;
        opts.forest.tree_count = 4;
        opts.seed = 11;
        return new experiment_setup(opts);
    }();
    return *setup;
}

experiment_result run_cell(scheduler_kind kind, double budget_mb) {
    experiment_params params;
    params.kind = kind;
    params.fixed_level = 3;
    params.weekly_budget_mb = budget_mb;
    params.seed = 13;
    return run_experiment(shared_setup(), params);
}

TEST(golden_figs, fig3_delivery_recall_precision) {
    std::ostringstream out;
    out << "budget_mb,scheduler,delivery_ratio,delivered_mb,recall,precision\n";
    for (double budget : {1.0, 5.0}) {
        for (auto kind :
             {scheduler_kind::richnote, scheduler_kind::fifo, scheduler_kind::util}) {
            const auto r = run_cell(kind, budget);
            out << fmt(budget) << ',' << r.scheduler_name << ',' << fmt(r.delivery_ratio)
                << ',' << fmt(r.delivered_mb) << ',' << fmt(r.recall) << ','
                << fmt(r.precision) << '\n';
        }
    }
    compare_or_update("fig3_small.csv", out.str());
}

TEST(golden_figs, fig4_utility_energy_delay) {
    std::ostringstream out;
    out << "budget_mb,scheduler,total_utility,utility_clicked,energy_kj,delay_min\n";
    for (double budget : {1.0, 5.0}) {
        for (auto kind :
             {scheduler_kind::richnote, scheduler_kind::fifo, scheduler_kind::util}) {
            const auto r = run_cell(kind, budget);
            out << fmt(budget) << ',' << r.scheduler_name << ',' << fmt(r.total_utility)
                << ',' << fmt(r.utility_clicked) << ',' << fmt(r.energy_kj) << ','
                << fmt(r.mean_delay_min) << '\n';
        }
    }
    compare_or_update("fig4_small.csv", out.str());
}

TEST(golden_figs, fault_tolerance_counters) {
    experiment_params params;
    params.kind = scheduler_kind::richnote;
    params.weekly_budget_mb = 5.0;
    params.seed = 13;
    richnote::faults::fault_plan_params fp;
    fp.seed = 17;
    fp.blackout_prob = 0.05;
    fp.partial_transfer_prob = 0.10;
    fp.duplicate_prob = 0.05;
    fp.reorder_prob = 0.05;
    fp.brownout_prob = 0.03;
    fp.crash_restart_prob = 0.02;
    params.faults = fp;
    params.retry.max_attempts = 8;
    const auto r = run_experiment(shared_setup(), params);

    std::ostringstream out;
    out << "metric,value\n";
    out << "delivery_ratio," << fmt(r.delivery_ratio) << '\n';
    out << "total_utility," << fmt(r.total_utility) << '\n';
    out << "faults_injected," << r.faults.faults_injected << '\n';
    out << "transfer_retries," << r.faults.transfer_retries << '\n';
    out << "dead_lettered," << r.faults.dead_lettered << '\n';
    out << "duplicates_suppressed," << r.faults.duplicates_suppressed << '\n';
    out << "crash_restarts," << r.faults.crash_restarts << '\n';
    out << "partial_bytes," << fmt(r.faults.partial_bytes) << '\n';
    out << "resumed_bytes," << fmt(r.faults.resumed_bytes) << '\n';
    compare_or_update("fault_tolerance_small.csv", out.str());
}

} // namespace

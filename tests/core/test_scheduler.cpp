#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "core/presentation.hpp"
#include "energy/model.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::fifo_scheduler;
using richnote::core::level_t;
using richnote::core::planned_delivery;
using richnote::core::richnote_scheduler;
using richnote::core::round_context;
using richnote::core::sched_item;
using richnote::core::util_scheduler;
using richnote::sim::net_state;

const richnote::energy::energy_model g_energy;

sched_item make_item(std::uint64_t id, double content_utility,
                     double created_at = 0.0) {
    static const audio_preview_generator generator{audio_preview_generator::params{}};
    sched_item item;
    item.note.id = id;
    item.note.recipient = 0;
    item.note.created_at = created_at;
    item.content_utility = content_utility;
    item.presentations = generator.generate(276.0);
    item.arrived_at = created_at;
    return item;
}

round_context cell_ctx(double budget) {
    round_context ctx;
    ctx.data_budget_bytes = budget;
    ctx.network = net_state::cell;
    ctx.metered = true;
    ctx.link_capacity_bytes = 1e12;
    ctx.energy_replenishment = 3000.0;
    return ctx;
}

double plan_bytes(const std::vector<planned_delivery>& plan) {
    double total = 0;
    for (const auto& d : plan) total += d.size_bytes;
    return total;
}

// ------------------------------------------------------------- base ----

TEST(queue_base, enqueue_tracks_size_and_bytes) {
    fifo_scheduler s(3, g_energy);
    s.enqueue(make_item(1, 0.5));
    s.enqueue(make_item(2, 0.6));
    EXPECT_EQ(s.queue_size(), 2u);
    EXPECT_GT(s.queue_bytes(), 0.0);
}

TEST(queue_base, duplicate_ids_are_rejected) {
    fifo_scheduler s(3, g_energy);
    s.enqueue(make_item(7, 0.5));
    EXPECT_THROW(s.enqueue(make_item(7, 0.5)), richnote::precondition_error);
}

TEST(queue_base, delivering_unknown_item_throws) {
    fifo_scheduler s(3, g_energy);
    EXPECT_THROW(s.on_delivered(42, 0.0), richnote::precondition_error);
}

TEST(queue_base, delivery_removes_item_and_bytes) {
    fifo_scheduler s(3, g_energy);
    s.enqueue(make_item(1, 0.5));
    s.enqueue(make_item(2, 0.5));
    const double before = s.queue_bytes();
    s.on_delivered(1, 10.0);
    EXPECT_EQ(s.queue_size(), 1u);
    EXPECT_LT(s.queue_bytes(), before);
    // Remaining item still addressable.
    s.on_delivered(2, 10.0);
    EXPECT_EQ(s.queue_size(), 0u);
    EXPECT_NEAR(s.queue_bytes(), 0.0, 1e-9);
}

// ------------------------------------------------------------- fifo ----

TEST(fifo, delivers_in_arrival_order) {
    fifo_scheduler s(2, g_energy);
    s.enqueue(make_item(10, 0.1, 0.0));
    s.enqueue(make_item(11, 0.9, 1.0));
    s.enqueue(make_item(12, 0.5, 2.0));
    const auto plan = s.plan(cell_ctx(1e9));
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].item_id, 10u);
    EXPECT_EQ(plan[1].item_id, 11u);
    EXPECT_EQ(plan[2].item_id, 12u);
}

TEST(fifo, uses_its_fixed_level) {
    fifo_scheduler s(3, g_energy); // metadata + 10 s
    s.enqueue(make_item(1, 1.0));
    const auto plan = s.plan(cell_ctx(1e9));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].level, 3u);
    EXPECT_DOUBLE_EQ(plan[0].size_bytes, 200.0 + 10.0 * 20'000.0);
}

TEST(fifo, blocks_at_head_of_line) {
    fifo_scheduler s(3, g_energy); // each item costs ~200 KB
    s.enqueue(make_item(1, 0.1));
    s.enqueue(make_item(2, 0.9));
    // Budget for one item only: FIFO must deliver item 1 and stop, even
    // though item 2 has higher utility.
    const auto plan = s.plan(cell_ctx(250'000.0));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 1u);
}

TEST(fifo, empty_plan_when_disconnected_or_broke) {
    fifo_scheduler s(3, g_energy);
    s.enqueue(make_item(1, 0.5));
    round_context off = cell_ctx(1e9);
    off.network = net_state::off;
    EXPECT_TRUE(s.plan(off).empty());
    EXPECT_TRUE(s.plan(cell_ctx(0.0)).empty());
}

TEST(fifo, always_allows_delivery) {
    fifo_scheduler s(3, g_energy);
    EXPECT_TRUE(s.allow_delivery(1e12));
}

// ------------------------------------------------------------- util ----

TEST(util, delivers_highest_utility_first) {
    util_scheduler s(3, g_energy);
    s.enqueue(make_item(1, 0.2));
    s.enqueue(make_item(2, 0.9));
    s.enqueue(make_item(3, 0.5));
    const auto plan = s.plan(cell_ctx(1e9));
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].item_id, 2u);
    EXPECT_EQ(plan[1].item_id, 3u);
    EXPECT_EQ(plan[2].item_id, 1u);
}

TEST(util, skips_items_that_do_not_fit) {
    util_scheduler s(3, g_energy);
    s.enqueue(make_item(1, 0.2));
    s.enqueue(make_item(2, 0.9));
    // Budget for one: UTIL takes the best one (unlike FIFO's head block).
    const auto plan = s.plan(cell_ctx(250'000.0));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 2u);
}

TEST(util, ties_break_by_id_for_determinism) {
    util_scheduler s(3, g_energy);
    s.enqueue(make_item(5, 0.5));
    s.enqueue(make_item(4, 0.5));
    const auto plan = s.plan(cell_ctx(1e9));
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].item_id, 4u);
}

TEST(fixed_level, rejects_level_zero) {
    EXPECT_THROW(fifo_scheduler(0, g_energy), richnote::precondition_error);
}

// --------------------------------------------------------- richnote ----

richnote_scheduler make_richnote() {
    richnote_scheduler::params p;
    return richnote_scheduler(p, g_energy);
}

TEST(richnote, plan_respects_budget) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 10; ++i) s.enqueue(make_item(i, 0.5));
    const auto plan = s.plan(cell_ctx(500'000.0));
    EXPECT_LE(plan_bytes(plan), 500'000.0 + 1e-6);
}

TEST(richnote, generous_budget_delivers_everything_at_max_level) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 5; ++i) s.enqueue(make_item(i, 0.5));
    const auto plan = s.plan(cell_ctx(1e9));
    ASSERT_EQ(plan.size(), 5u);
    for (const auto& d : plan) EXPECT_EQ(d.level, 6u);
}

TEST(richnote, tiny_budget_downgrades_to_metadata) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 5; ++i) s.enqueue(make_item(i, 0.5));
    // Budget fits all five metadata presentations but no previews.
    const auto plan = s.plan(cell_ctx(2'000.0));
    ASSERT_EQ(plan.size(), 5u);
    for (const auto& d : plan) EXPECT_EQ(d.level, 1u);
}

TEST(richnote, adapts_level_mix_to_intermediate_budget) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 10; ++i)
        s.enqueue(make_item(i, 0.1 + 0.08 * static_cast<double>(i)));
    // Room for all metas plus a couple of preview upgrades.
    const auto plan = s.plan(cell_ctx(300'000.0));
    ASSERT_EQ(plan.size(), 10u);
    level_t min_level = 99, max_level = 0;
    for (const auto& d : plan) {
        min_level = std::min(min_level, d.level);
        max_level = std::max(max_level, d.level);
    }
    EXPECT_EQ(min_level, 1u);
    EXPECT_GT(max_level, 1u); // mixed presentation levels: the adaptation
}

TEST(richnote, upgrades_go_to_higher_content_utility_items) {
    auto s = make_richnote();
    s.enqueue(make_item(1, 0.1));
    s.enqueue(make_item(2, 0.9));
    // All metas + one 5 s upgrade (100 KB).
    const auto plan = s.plan(cell_ctx(101'000.0));
    ASSERT_EQ(plan.size(), 2u);
    // Plan is sorted by true utility: item 2 first, and it got the upgrade.
    EXPECT_EQ(plan[0].item_id, 2u);
    EXPECT_GT(plan[0].level, plan[1].level);
}

TEST(richnote, plan_is_sorted_by_true_utility) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 6; ++i)
        s.enqueue(make_item(i, 0.15 * static_cast<double>(i + 1)));
    const auto plan = s.plan(cell_ctx(1e9));
    for (std::size_t i = 1; i < plan.size(); ++i)
        EXPECT_GE(plan[i - 1].utility, plan[i].utility);
}

TEST(richnote, energy_credit_gates_delivery) {
    richnote_scheduler::params p;
    p.lyapunov.initial_energy_credit = 0.0;
    richnote_scheduler s(p, g_energy);
    EXPECT_FALSE(s.allow_delivery(1.0));
    // A round replenishment restores the gate.
    s.enqueue(make_item(1, 0.5));
    (void)s.plan(cell_ctx(1e9)); // on_round(3000) runs inside plan
    EXPECT_TRUE(s.allow_delivery(1.0));
}

TEST(richnote, controller_tracks_queue_departures) {
    auto s = make_richnote();
    s.enqueue(make_item(1, 0.5));
    const double backlog = s.controller().queue_backlog();
    EXPECT_GT(backlog, 0.0);
    s.on_delivered(1, 100.0);
    EXPECT_DOUBLE_EQ(s.controller().queue_backlog(), 0.0);
}

TEST(richnote, wifi_ignores_data_budget) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 3; ++i) s.enqueue(make_item(i, 0.5));
    round_context wifi = cell_ctx(100.0); // near-zero metered budget
    wifi.network = net_state::wifi;
    wifi.metered = false;
    wifi.link_capacity_bytes = 1e9;
    const auto plan = s.plan(wifi);
    ASSERT_EQ(plan.size(), 3u);
    for (const auto& d : plan) EXPECT_EQ(d.level, 6u);
}

TEST(richnote, link_capacity_caps_unmetered_budget) {
    auto s = make_richnote();
    for (std::uint64_t i = 0; i < 3; ++i) s.enqueue(make_item(i, 0.5));
    round_context wifi = cell_ctx(1e12);
    wifi.network = net_state::wifi;
    wifi.metered = false;
    wifi.link_capacity_bytes = 2'000.0; // only metas fit
    const auto plan = s.plan(wifi);
    for (const auto& d : plan) EXPECT_EQ(d.level, 1u);
}

} // namespace

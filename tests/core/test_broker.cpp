#include "core/broker.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "core/utility.hpp"
#include "trace/generator.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::broker;
using richnote::core::broker_params;
using richnote::core::constant_content_utility;
using richnote::core::fifo_scheduler;
using richnote::core::metrics_recorder;
using richnote::core::richnote_scheduler;
namespace t = richnote::sim;

/// Shared fixture world: catalog and a deterministic environment.
class broker_test : public ::testing::Test {
protected:
    broker_test()
        : generator_(audio_preview_generator::params{}),
          utility_(0.5),
          metrics_(1, 6) {
        richnote::trace::catalog_params cp;
        cp.artist_count = 20;
        richnote::rng cat_gen(3);
        catalog_ = std::make_unique<richnote::trace::catalog>(cp, cat_gen);
    }

    broker make_broker(std::unique_ptr<richnote::core::scheduler> sched,
                       double theta_bytes, bool always_connected = true) {
        broker_params bp;
        bp.budget_per_round_bytes = theta_bytes;
        auto network = always_connected
                           ? t::markov_network_model::fixed(t::net_state::cell)
                           : t::markov_network_model::fixed(t::net_state::off);
        richnote::rng bat_gen(7);
        t::battery_params batp;
        batp.phase_jitter_hours = 0;
        auto battery = std::make_unique<t::battery_model>(batp, bat_gen);
        return broker(0, bp, std::move(sched), generator_, utility_, energy_,
                      std::move(network), std::move(battery), *catalog_, metrics_, 99);
    }

    richnote::trace::notification make_note(std::uint64_t id, double created_at = 0.0) {
        richnote::trace::notification n;
        n.id = id;
        n.recipient = 0;
        n.track = 0;
        n.created_at = created_at;
        n.features.social_tie = 0.5;
        return n;
    }

    audio_preview_generator generator_;
    constant_content_utility utility_;
    richnote::energy::energy_model energy_;
    std::unique_ptr<richnote::trace::catalog> catalog_;
    metrics_recorder metrics_;
};

TEST_F(broker_test, admission_records_arrival_and_queues_item) {
    auto b = make_broker(std::make_unique<fifo_scheduler>(3, energy_), 1e6);
    b.admit(make_note(1));
    EXPECT_EQ(b.sched().queue_size(), 1u);
    EXPECT_DOUBLE_EQ(metrics_.total_arrived(), 1.0);
}

TEST_F(broker_test, admission_rejects_foreign_user) {
    auto b = make_broker(std::make_unique<fifo_scheduler>(3, energy_), 1e6);
    auto n = make_note(1);
    n.recipient = 5;
    EXPECT_THROW(b.admit(n), richnote::precondition_error);
}

TEST_F(broker_test, round_delivers_when_connected_and_budgeted) {
    auto b = make_broker(std::make_unique<fifo_scheduler>(3, energy_), 1e6);
    b.admit(make_note(1));
    richnote::rng gen(1);
    b.run_round(0.0);
    EXPECT_EQ(b.sched().queue_size(), 0u);
    EXPECT_DOUBLE_EQ(metrics_.total_delivered(), 1.0);
    EXPECT_GT(metrics_.total_energy_joules(), 0.0);
}

TEST_F(broker_test, nothing_delivers_when_offline) {
    auto b = make_broker(std::make_unique<fifo_scheduler>(3, energy_), 1e6,
                         /*always_connected=*/false);
    b.admit(make_note(1));
    richnote::rng gen(1);
    b.run_round(0.0);
    EXPECT_EQ(b.sched().queue_size(), 1u);
    EXPECT_DOUBLE_EQ(metrics_.total_delivered(), 0.0);
}

TEST_F(broker_test, budget_is_deducted_and_rolls_over) {
    // theta = 50 KB; one L3 item costs ~200 KB, so it takes 4 rounds of
    // rollover before FIFO can deliver it.
    auto b = make_broker(std::make_unique<fifo_scheduler>(3, energy_), 50'000.0);
    b.admit(make_note(1));
    richnote::rng gen(1);
    int delivered_at = -1;
    for (int round = 0; round < 6; ++round) {
        b.run_round(round * t::hours);
        if (metrics_.total_delivered() > 0 && delivered_at < 0) delivered_at = round;
    }
    EXPECT_EQ(delivered_at, 4); // first round whose budget covers 200.2 KB
    // Deduction happened: leftover budget is below theta * rounds.
    EXPECT_LT(b.data_budget(), 6 * 50'000.0);
}

TEST_F(broker_test, rollover_is_capped) {
    broker_params bp;
    bp.budget_per_round_bytes = 1000.0;
    bp.rollover_rounds = 3.0;
    auto network = t::markov_network_model::fixed(t::net_state::cell);
    richnote::rng bat_gen(7);
    t::battery_params batp;
    batp.phase_jitter_hours = 0;
    auto battery = std::make_unique<t::battery_model>(batp, bat_gen);
    broker b(0, bp, std::make_unique<fifo_scheduler>(3, energy_), generator_, utility_,
             energy_, std::move(network), std::move(battery), *catalog_, metrics_, 99);
    richnote::rng gen(1);
    for (int round = 0; round < 10; ++round) b.run_round(round * t::hours);
    EXPECT_LE(b.data_budget(), 3000.0 + 1e-9);
}

TEST_F(broker_test, delivery_timestamps_reflect_link_serialization) {
    auto b = make_broker(std::make_unique<fifo_scheduler>(3, energy_), 1e9);
    b.admit(make_note(1));
    b.admit(make_note(2));
    richnote::rng gen(1);
    b.run_round(0.0);
    // Two 200.2 KB items over 200 KB/s cellular: ~1 s and ~2 s after the
    // round starts; both well under an hour.
    const double delay = metrics_.mean_queuing_delay_sec();
    EXPECT_GT(delay, 0.5);
    EXPECT_LT(delay, 10.0);
}

TEST_F(broker_test, richnote_scheduler_adapts_inside_broker) {
    richnote_scheduler::params rp;
    auto b = make_broker(std::make_unique<richnote_scheduler>(rp, energy_), 2'000.0);
    for (std::uint64_t i = 0; i < 5; ++i) b.admit(make_note(i));
    richnote::rng gen(1);
    b.run_round(0.0);
    // Tiny budget: everything goes out as metadata-only.
    EXPECT_DOUBLE_EQ(metrics_.total_delivered(), 5.0);
    const auto mix = metrics_.level_mix();
    EXPECT_DOUBLE_EQ(mix[1], 1.0);
}

TEST_F(broker_test, link_capacity_limits_per_round_bytes) {
    // 200 KB/s cellular for 1 h = 720 MB capacity; admit more than fits.
    auto b = make_broker(std::make_unique<fifo_scheduler>(6, energy_), 1e12);
    // level 6 item = 800.2 KB; 1000 items = 800 MB > 720 MB capacity.
    for (std::uint64_t i = 0; i < 1000; ++i) b.admit(make_note(i));
    richnote::rng gen(1);
    b.run_round(0.0);
    EXPECT_LT(metrics_.total_delivered(), 1000.0);
    EXPECT_GT(metrics_.total_delivered(), 800.0);
    EXPECT_LE(metrics_.total_bytes_delivered(), 200.0 * 1024.0 * 3600.0);
}

TEST_F(broker_test, rejects_invalid_construction) {
    broker_params bp;
    bp.budget_per_round_bytes = -1.0;
    auto network = t::markov_network_model::fixed(t::net_state::cell);
    richnote::rng bat_gen(7);
    auto battery = std::make_unique<t::battery_model>(t::battery_params{}, bat_gen);
    EXPECT_THROW(broker(0, bp, std::make_unique<fifo_scheduler>(3, energy_), generator_,
                        utility_, energy_, std::move(network), std::move(battery),
                        *catalog_, metrics_, 99),
                 richnote::precondition_error);
}

} // namespace

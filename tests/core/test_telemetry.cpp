#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/experiment.hpp"

namespace {

using richnote::core::round_sample;
using richnote::core::telemetry;

round_sample sample_for(std::uint32_t user, std::uint64_t round, double q_bytes = 0.0) {
    round_sample s;
    s.user = user;
    s.round = round;
    s.queue_bytes = q_bytes;
    return s;
}

TEST(telemetry_unit, disabled_by_default) {
    const telemetry t;
    EXPECT_FALSE(t.enabled());
    EXPECT_FALSE(t.watches(0));
}

TEST(telemetry_unit, records_only_watched_users) {
    telemetry t({3, 7});
    EXPECT_TRUE(t.enabled());
    EXPECT_TRUE(t.watches(3));
    EXPECT_FALSE(t.watches(4));
    t.record(sample_for(3, 0));
    t.record(sample_for(4, 0)); // silently ignored
    t.record(sample_for(7, 0));
    t.record(sample_for(3, 1));
    EXPECT_EQ(t.samples().size(), 3u);
    EXPECT_EQ(t.of(3).size(), 2u);
    EXPECT_EQ(t.of(7).size(), 1u);
}

TEST(telemetry_unit, duplicate_watch_list_entries_collapse) {
    telemetry t({5, 5, 5});
    t.record(sample_for(5, 0));
    EXPECT_EQ(t.samples().size(), 1u);
}

TEST(telemetry_unit, of_unwatched_user_throws) {
    telemetry t({1});
    EXPECT_THROW(t.of(2), richnote::precondition_error);
}

TEST(telemetry_unit, max_queue_bytes) {
    telemetry t({1});
    t.record(sample_for(1, 0, 100.0));
    t.record(sample_for(1, 1, 900.0));
    t.record(sample_for(1, 2, 300.0));
    EXPECT_DOUBLE_EQ(t.max_queue_bytes(1), 900.0);
}

TEST(telemetry_unit, csv_has_header_and_rows) {
    telemetry t({2});
    t.record(sample_for(2, 0, 42.0));
    std::ostringstream os;
    t.write_csv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("round,user,queue_items"), std::string::npos);
    EXPECT_NE(out.find("0,2,"), std::string::npos);
}

// ----------------------------- experiment integration --------------------

TEST(telemetry_experiment, samples_every_round_for_watched_users) {
    richnote::core::experiment_setup::options opts;
    opts.workload.user_count = 20;
    opts.workload.catalog.artist_count = 40;
    opts.workload.playlist_count = 8;
    opts.forest.tree_count = 5;
    opts.seed = 13;
    const richnote::core::experiment_setup setup(opts);

    richnote::core::experiment_params params;
    params.kind = richnote::core::scheduler_kind::richnote;
    params.weekly_budget_mb = 5.0;
    params.telemetry_users = {0, 7};
    params.seed = 3;
    const auto r = run_experiment(setup, params);

    ASSERT_TRUE(r.trajectories != nullptr);
    ASSERT_TRUE(r.trajectories->enabled());
    EXPECT_EQ(r.trajectories->of(0).size(), r.rounds_run);
    EXPECT_EQ(r.trajectories->of(7).size(), r.rounds_run);

    // P(t) stays within the gated band [0, kappa + e] and the delivered
    // counter is monotone.
    std::uint64_t previous_delivered = 0;
    for (const auto& s : r.trajectories->of(0)) {
        EXPECT_GE(s.energy_credit, 0.0);
        EXPECT_LE(s.energy_credit, 2.0 * 3000.0 + 1e-9);
        EXPECT_GE(s.battery_level, 0.0);
        EXPECT_LE(s.battery_level, 1.0);
        EXPECT_GE(s.delivered_so_far, previous_delivered);
        previous_delivered = s.delivered_so_far;
    }
}

TEST(telemetry_experiment, baselines_report_zero_energy_credit) {
    richnote::core::experiment_setup::options opts;
    opts.workload.user_count = 10;
    opts.workload.catalog.artist_count = 30;
    opts.workload.playlist_count = 5;
    opts.workload.horizon = richnote::sim::days;
    opts.forest.tree_count = 3;
    const richnote::core::experiment_setup setup(opts);

    richnote::core::experiment_params params;
    params.kind = richnote::core::scheduler_kind::fifo;
    params.weekly_budget_mb = 5.0;
    params.telemetry_users = {1};
    const auto r = run_experiment(setup, params);
    for (const auto& s : r.trajectories->of(1)) EXPECT_DOUBLE_EQ(s.energy_credit, 0.0);
}

TEST(telemetry_experiment, disabled_when_no_users_requested) {
    richnote::core::experiment_setup::options opts;
    opts.workload.user_count = 10;
    opts.workload.catalog.artist_count = 30;
    opts.workload.playlist_count = 5;
    opts.workload.horizon = richnote::sim::days;
    opts.forest.tree_count = 3;
    const richnote::core::experiment_setup setup(opts);
    richnote::core::experiment_params params;
    params.weekly_budget_mb = 5.0;
    const auto r = run_experiment(setup, params);
    ASSERT_TRUE(r.trajectories != nullptr);
    EXPECT_FALSE(r.trajectories->enabled());
    EXPECT_TRUE(r.trajectories->samples().empty());
}

} // namespace

// Parameterized property suites over the scheduler implementations:
// invariants that must hold for EVERY policy at EVERY budget, plus the
// direct (Eq. 2) scheduler and the precision-knob behaviours.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/presentation.hpp"
#include "core/scheduler.hpp"
#include "energy/model.hpp"

namespace {

using richnote::core::audio_preview_generator;
using richnote::core::direct_scheduler;
using richnote::core::fifo_scheduler;
using richnote::core::planned_delivery;
using richnote::core::richnote_scheduler;
using richnote::core::round_context;
using richnote::core::sched_item;
using richnote::core::scheduler;
using richnote::core::util_scheduler;
using richnote::sim::net_state;

const richnote::energy::energy_model g_energy;

sched_item make_item(std::uint64_t id, double content_utility) {
    static const audio_preview_generator generator{audio_preview_generator::params{}};
    sched_item item;
    item.note.id = id;
    item.note.recipient = 0;
    item.content_utility = content_utility;
    item.presentations = generator.generate(276.0);
    return item;
}

round_context cell_ctx(double budget) {
    round_context ctx;
    ctx.data_budget_bytes = budget;
    ctx.network = net_state::cell;
    ctx.metered = true;
    ctx.link_capacity_bytes = 1e12;
    ctx.energy_replenishment = 3000.0;
    return ctx;
}

enum class policy { richnote, fifo, util, direct };

std::unique_ptr<scheduler> make_scheduler(policy p) {
    switch (p) {
        case policy::richnote:
            return std::make_unique<richnote_scheduler>(richnote_scheduler::params{},
                                                        g_energy);
        case policy::fifo: return std::make_unique<fifo_scheduler>(3, g_energy);
        case policy::util: return std::make_unique<util_scheduler>(3, g_energy);
        case policy::direct:
            return std::make_unique<direct_scheduler>(direct_scheduler::params{},
                                                      g_energy);
    }
    return nullptr;
}

const char* policy_name(policy p) {
    switch (p) {
        case policy::richnote: return "richnote";
        case policy::fifo: return "fifo";
        case policy::util: return "util";
        case policy::direct: return "direct";
    }
    return "?";
}

/// (policy, budget bytes) sweep.
class scheduler_plan_properties
    : public ::testing::TestWithParam<std::tuple<policy, double>> {};

TEST_P(scheduler_plan_properties, plan_invariants_hold) {
    const auto [p, budget] = GetParam();
    auto sched = make_scheduler(p);
    richnote::rng gen(42);
    for (std::uint64_t id = 0; id < 30; ++id)
        sched->enqueue(make_item(id, gen.uniform(0.05, 1.0)));

    const auto plan = sched->plan(cell_ctx(budget));

    double total_bytes = 0.0;
    std::set<std::uint64_t> ids;
    for (const planned_delivery& d : plan) {
        // Level 1..6, size matches the generated menu, positive true
        // utility, non-negative energy estimate.
        EXPECT_GE(d.level, 1u);
        EXPECT_LE(d.level, 6u);
        EXPECT_GT(d.size_bytes, 0.0);
        EXPECT_GT(d.utility, 0.0);
        EXPECT_GE(d.rho_joules, 0.0);
        EXPECT_GT(d.item_total_size, 0.0);
        total_bytes += d.size_bytes;
        EXPECT_TRUE(ids.insert(d.item_id).second) << "duplicate item in plan";
    }
    EXPECT_LE(total_bytes, budget + 1e-6)
        << policy_name(p) << " plan exceeds the data budget";
    // Planning must not mutate the queue.
    EXPECT_EQ(sched->queue_size(), 30u);
}

TEST_P(scheduler_plan_properties, delivering_the_whole_plan_empties_its_items) {
    const auto [p, budget] = GetParam();
    auto sched = make_scheduler(p);
    richnote::rng gen(7);
    for (std::uint64_t id = 0; id < 20; ++id)
        sched->enqueue(make_item(id, gen.uniform(0.05, 1.0)));
    const auto plan = sched->plan(cell_ctx(budget));
    for (const auto& d : plan) sched->on_delivered(d.item_id, d.rho_joules);
    EXPECT_EQ(sched->queue_size(), 20u - plan.size());
}

TEST_P(scheduler_plan_properties, bigger_budget_never_plans_fewer_bytes) {
    const auto [p, budget] = GetParam();
    auto a = make_scheduler(p);
    auto b = make_scheduler(p);
    richnote::rng gen(11);
    for (std::uint64_t id = 0; id < 25; ++id) {
        const double u = gen.uniform(0.05, 1.0);
        a->enqueue(make_item(id, u));
        b->enqueue(make_item(id, u));
    }
    auto bytes_of = [](const std::vector<planned_delivery>& plan) {
        double total = 0;
        for (const auto& d : plan) total += d.size_bytes;
        return total;
    };
    const double small = bytes_of(a->plan(cell_ctx(budget)));
    const double large = bytes_of(b->plan(cell_ctx(budget * 2.0)));
    EXPECT_GE(large, small - 1e-6) << policy_name(p);
}

INSTANTIATE_TEST_SUITE_P(
    policies_and_budgets, scheduler_plan_properties,
    ::testing::Combine(::testing::Values(policy::richnote, policy::fifo, policy::util,
                                         policy::direct),
                       ::testing::Values(5e4, 5e5, 5e6, 5e7)),
    [](const ::testing::TestParamInfo<std::tuple<policy, double>>& info) {
        return std::string(policy_name(std::get<0>(info.param))) + "_budget" +
               std::to_string(static_cast<long long>(std::get<1>(info.param)));
    });

// ------------------------------------------------------------- direct ----

TEST(direct_scheduler_test, slack_energy_matches_richnote_selection) {
    // With energy slack and per-item energy proportional to size (huge
    // batch amortization removes the fixed overhead share), both designs
    // reduce to the same utility-per-byte greedy: identical level choices.
    direct_scheduler::params dp;
    dp.expected_batch_items = 1e9;
    direct_scheduler direct(dp, g_energy);
    richnote_scheduler::params rp;
    rp.expected_batch_items = 1e9;
    richnote_scheduler lyapunov(rp, g_energy);

    richnote::rng gen(3);
    for (std::uint64_t id = 0; id < 15; ++id) {
        const double u = gen.uniform(0.05, 1.0);
        direct.enqueue(make_item(id, u));
        lyapunov.enqueue(make_item(id, u));
    }
    const auto pd = direct.plan(cell_ctx(1e6));
    const auto pl = lyapunov.plan(cell_ctx(1e6));
    ASSERT_EQ(pd.size(), pl.size());
    for (std::size_t i = 0; i < pd.size(); ++i) {
        EXPECT_EQ(pd[i].item_id, pl[i].item_id);
        EXPECT_EQ(pd[i].level, pl[i].level);
    }
}

TEST(direct_scheduler_test, energy_budget_caps_selection) {
    direct_scheduler::params p;
    p.kappa_joules_per_round = 5.0; // ~ one metadata + small preview
    p.energy_accrual_rounds = 1.0;
    direct_scheduler sched(p, g_energy);
    for (std::uint64_t id = 0; id < 10; ++id) sched.enqueue(make_item(id, 0.9));
    const auto plan = sched.plan(cell_ctx(1e9));
    double rho_total = 0;
    for (const auto& d : plan) rho_total += d.rho_joules;
    EXPECT_LE(rho_total, 5.0 + 1e-9);
}

TEST(direct_scheduler_test, credit_accrues_and_is_spent) {
    direct_scheduler::params p;
    p.kappa_joules_per_round = 10.0;
    p.energy_accrual_rounds = 3.0;
    direct_scheduler sched(p, g_energy);
    // Three empty rounds bank credit up to the cap.
    for (int r = 0; r < 5; ++r) (void)sched.plan(cell_ctx(1e6));
    EXPECT_DOUBLE_EQ(sched.energy_credit(), 30.0);
    sched.enqueue(make_item(1, 0.9));
    const auto plan = sched.plan(cell_ctx(1e9));
    ASSERT_FALSE(plan.empty());
    EXPECT_TRUE(sched.allow_delivery(plan[0].rho_joules));
    sched.on_delivered(plan[0].item_id, plan[0].rho_joules);
    EXPECT_LT(sched.energy_credit(), 30.0);
}

TEST(direct_scheduler_test, session_overhead_charges_credit) {
    direct_scheduler::params p;
    p.kappa_joules_per_round = 10.0;
    direct_scheduler sched(p, g_energy);
    const double before = sched.energy_credit();
    sched.on_session_overhead(4.0);
    EXPECT_DOUBLE_EQ(sched.energy_credit(), before - 4.0);
}

TEST(direct_scheduler_test, rejects_bad_params) {
    direct_scheduler::params p;
    p.kappa_joules_per_round = -1.0;
    EXPECT_THROW(direct_scheduler(p, g_energy), richnote::precondition_error);
    p = direct_scheduler::params{};
    p.energy_accrual_rounds = 0.5;
    EXPECT_THROW(direct_scheduler(p, g_energy), richnote::precondition_error);
}

// ----------------------------------------------------- precision knob ----

TEST(precision_knob, declines_low_utility_items_at_enqueue) {
    richnote_scheduler::params p;
    p.min_content_utility = 0.5;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item(1, 0.4)); // declined
    sched.enqueue(make_item(2, 0.6)); // accepted
    sched.enqueue(make_item(3, 0.5)); // boundary: accepted (>=)
    EXPECT_EQ(sched.queue_size(), 2u);
    EXPECT_EQ(sched.dropped_low_utility(), 1u);
    // The declined item never appears in a plan.
    for (const auto& d : sched.plan(cell_ctx(1e9))) EXPECT_NE(d.item_id, 1u);
}

TEST(precision_knob, zero_threshold_accepts_everything) {
    richnote_scheduler::params p;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item(1, 0.0));
    EXPECT_EQ(sched.queue_size(), 1u);
    EXPECT_EQ(sched.dropped_low_utility(), 0u);
}

TEST(precision_knob, declined_items_do_not_touch_the_lyapunov_queue) {
    richnote_scheduler::params p;
    p.min_content_utility = 0.9;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item(1, 0.1));
    EXPECT_DOUBLE_EQ(sched.controller().queue_backlog(), 0.0);
}

// ------------------------------------------------------------- aging ----

sched_item make_item_at(std::uint64_t id, double content_utility, double arrived_at) {
    sched_item item = make_item(id, content_utility);
    item.note.created_at = arrived_at;
    item.arrived_at = arrived_at;
    return item;
}

TEST(aging, delivered_utility_halves_after_one_half_life) {
    richnote_scheduler::params p;
    p.utility_half_life_sec = 3600.0;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.8, 0.0));

    round_context ctx = cell_ctx(1e9);
    ctx.now = 3600.0; // exactly one half-life after arrival
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.size(), 1u);
    // Level 6 presentation utility is 1.0, so U = aged U_c = 0.4.
    EXPECT_EQ(plan[0].level, 6u);
    EXPECT_NEAR(plan[0].utility, 0.4, 1e-9);
}

TEST(aging, zero_half_life_disables_decay) {
    richnote_scheduler::params p; // default: aging off
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.8, 0.0));
    round_context ctx = cell_ctx(1e9);
    ctx.now = 1e6;
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_NEAR(plan[0].utility, 0.8, 1e-9);
}

TEST(aging, stale_items_lose_upgrade_priority_to_fresh_ones) {
    richnote_scheduler::params p;
    p.utility_half_life_sec = 1800.0;
    richnote_scheduler sched(p, g_energy);
    // Stale strong item vs fresh weaker item: after two half-lives the
    // stale one's effective utility (0.9 -> 0.225) trails the fresh 0.5.
    sched.enqueue(make_item_at(1, 0.9, 0.0));
    sched.enqueue(make_item_at(2, 0.5, 3600.0));

    round_context ctx = cell_ctx(101'000.0); // metas + one 5 s upgrade
    ctx.now = 3600.0;
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].item_id, 2u); // fresh item leads the plan
    EXPECT_GT(plan[0].level, plan[1].level); // ... and got the upgrade
}

// ------------------------------------------------------------- expiry ----

TEST(expiry, old_items_are_dropped_at_plan_time) {
    richnote_scheduler::params p;
    p.max_queue_age_sec = 3600.0;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.5, 0.0));      // will be 2 h old
    sched.enqueue(make_item_at(2, 0.5, 6000.0));   // fresh enough
    round_context ctx = cell_ctx(1e9);
    ctx.now = 7200.0;
    const auto plan = sched.plan(ctx);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 2u);
    EXPECT_EQ(sched.expired_items(), 1u);
    EXPECT_EQ(sched.queue_size(), 1u);
}

TEST(expiry, disabled_by_default) {
    richnote_scheduler sched(richnote_scheduler::params{}, g_energy);
    sched.enqueue(make_item_at(1, 0.5, 0.0));
    round_context ctx = cell_ctx(1e9);
    ctx.now = 1e9;
    EXPECT_EQ(sched.plan(ctx).size(), 1u);
    EXPECT_EQ(sched.expired_items(), 0u);
}

TEST(expiry, updates_the_lyapunov_backlog) {
    richnote_scheduler::params p;
    p.max_queue_age_sec = 10.0;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.5, 0.0));
    EXPECT_GT(sched.controller().queue_backlog(), 0.0);
    round_context ctx = cell_ctx(1e9);
    ctx.now = 100.0;
    (void)sched.plan(ctx);
    EXPECT_DOUBLE_EQ(sched.controller().queue_backlog(), 0.0);
    EXPECT_DOUBLE_EQ(sched.queue_bytes(), 0.0);
}

TEST(expiry, base_helper_expires_in_any_scheduler) {
    fifo_scheduler sched(3, g_energy);
    sched.enqueue(make_item_at(1, 0.5, 0.0));
    sched.enqueue(make_item_at(2, 0.5, 50.0));
    sched.enqueue(make_item_at(3, 0.5, 100.0));
    EXPECT_EQ(sched.expire_older_than(60.0), 2u);
    EXPECT_EQ(sched.queue_size(), 1u);
    const auto plan = sched.plan(cell_ctx(1e9));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 3u);
}

// ------------------------------------------------------ wifi deferral ----

TEST(wifi_deferral, withholds_high_value_items_on_metered_links) {
    richnote_scheduler::params p;
    p.wifi_deferral_min_utility = 0.5;
    p.wifi_deferral_max_wait_sec = 2.0 * 3600.0;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.9, 0.0)); // deferred
    sched.enqueue(make_item_at(2, 0.2, 0.0)); // below threshold: flows

    round_context cell = cell_ctx(1e9);
    cell.now = 0.0;
    const auto plan = sched.plan(cell);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 2u);
    EXPECT_EQ(sched.queue_size(), 2u); // the deferred item stays queued
    EXPECT_GT(sched.deferred_item_rounds(), 0u);
}

TEST(wifi_deferral, deferred_items_ship_on_unmetered_links) {
    richnote_scheduler::params p;
    p.wifi_deferral_min_utility = 0.5;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.9, 0.0));
    round_context wifi = cell_ctx(100.0); // tiny metered budget, irrelevant
    wifi.network = net_state::wifi;
    wifi.metered = false;
    wifi.link_capacity_bytes = 1e9;
    const auto plan = sched.plan(wifi);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 1u);
    EXPECT_EQ(plan[0].level, 6u); // rich, and free
}

TEST(wifi_deferral, wait_budget_releases_items_back_to_cellular) {
    richnote_scheduler::params p;
    p.wifi_deferral_min_utility = 0.5;
    p.wifi_deferral_max_wait_sec = 3600.0;
    richnote_scheduler sched(p, g_energy);
    sched.enqueue(make_item_at(1, 0.9, 0.0));
    round_context cell = cell_ctx(1e9);
    cell.now = 0.0;
    EXPECT_TRUE(sched.plan(cell).empty()); // still waiting
    cell.now = 3600.0;                     // wait budget exhausted
    const auto plan = sched.plan(cell);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].item_id, 1u);
}

TEST(wifi_deferral, disabled_by_default) {
    richnote_scheduler sched(richnote_scheduler::params{}, g_energy);
    sched.enqueue(make_item_at(1, 0.99, 0.0));
    EXPECT_EQ(sched.plan(cell_ctx(1e9)).size(), 1u);
    EXPECT_EQ(sched.deferred_item_rounds(), 0u);
}

} // namespace

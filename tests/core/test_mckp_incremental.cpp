// Property suite for the incremental MCKP re-solver: across randomized
// add / remove / re-price churn sequences, every round's solution must be
// byte-identical to a from-scratch cold solve, and on small instances the
// usual oracle sandwich (greedy <= exact <= fractional bound) must hold.
// One persistent scratch per sequence, so the reuse / replay / repair /
// cold paths are all exercised against accumulated state.
#include "core/mckp.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mckp_oracle.hpp"

namespace {

using richnote::rng;
using namespace richnote::core;
using richnote::testing::mckp_oracle;

constexpr double eps = 1e-9;

mckp_item random_item(rng& gen) {
    mckp_item item;
    const std::size_t levels = 1 + gen.index(4);
    double size = 0.0;
    for (std::size_t j = 0; j < levels; ++j) {
        size += gen.uniform(0.5, 20.0);
        item.sizes.push_back(size);
        // Adjusted utilities may be negative (Eq. 7); exercise that.
        item.utilities.push_back(gen.uniform(-2.0, 10.0));
    }
    return item;
}

std::vector<mckp_item> random_instance(rng& gen, std::size_t max_items) {
    std::vector<mckp_item> items(gen.index(max_items + 1));
    for (mckp_item& item : items) item = random_item(gen);
    return items;
}

/// One round of scheduler-like churn: mostly re-prices and menu clears
/// (positional removals leave an empty slot, as the scheduler's grow-only
/// instance does), occasionally a structural append.
void mutate(std::vector<mckp_item>& items, rng& gen) {
    const std::size_t ops = gen.index(4); // 0..3 mutations; 0 = stable round
    for (std::size_t op = 0; op < ops; ++op) {
        if (items.empty() || gen.index(12) == 0) {
            items.push_back(random_item(gen)); // arrival (structural)
            continue;
        }
        const std::size_t i = gen.index(items.size());
        switch (gen.index(4)) {
            case 0: // re-price: same level structure, new utilities
                for (double& u : items[i].utilities) u = gen.uniform(-2.0, 10.0);
                break;
            case 1: // full menu replacement
                items[i] = random_item(gen);
                break;
            case 2: // departure: cleared menu stays as an inert slot
                items[i].sizes.clear();
                items[i].utilities.clear();
                break;
            default: // re-arrival into a (possibly cleared) slot
                items[i] = random_item(gen);
                break;
        }
    }
}

void expect_same(const mckp_solution& fresh, const mckp_solution& incremental,
                 std::uint64_t seed, int round) {
    EXPECT_EQ(incremental.levels, fresh.levels) << "seed " << seed << " round " << round;
    EXPECT_EQ(incremental.total_size, fresh.total_size)
        << "seed " << seed << " round " << round;
    EXPECT_EQ(incremental.total_utility, fresh.total_utility)
        << "seed " << seed << " round " << round;
    EXPECT_EQ(incremental.upgrades, fresh.upgrades)
        << "seed " << seed << " round " << round;
    EXPECT_EQ(incremental.budget_exhausted, fresh.budget_exhausted)
        << "seed " << seed << " round " << round;
    EXPECT_EQ(incremental.fractional_bound, fresh.fractional_bound)
        << "seed " << seed << " round " << round;
}

// The core property: 200 seeded churn sequences, every round byte-identical
// to the cold solver under both infeasible-upgrade policies, with budgets
// that sometimes stay put (reuse), sometimes move (replay), while menus
// churn a little (repair) or a lot (cold fallback).
TEST(mckp_incremental, matches_cold_on_randomized_churn_sequences) {
    mckp_incremental_scratch::stats totals;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng gen(seed * 7919);
        mckp_incremental_scratch scratch; // persists across the sequence
        auto items = random_instance(gen, 12);
        double budget = gen.uniform(0.0, 80.0);
        mckp_options options;
        options.skip_infeasible = seed % 2 == 1;
        for (int round = 0; round < 25; ++round) {
            mutate(items, gen);
            if (gen.index(3) == 0) budget = gen.uniform(0.0, 80.0);
            // Sticky policy that occasionally flips: stable rounds can hit
            // the reuse path, flips exercise replay under both policies.
            if (gen.index(5) == 0) options.skip_infeasible = !options.skip_infeasible;
            const mckp_solution fresh = select_presentations(items, budget, options);
            const mckp_solution& inc =
                select_presentations_incremental(items, budget, options, scratch);
            expect_same(fresh, inc, seed, round);
        }
        EXPECT_EQ(scratch.counters.rounds, 25u) << "seed " << seed;
        EXPECT_EQ(scratch.counters.reused + scratch.counters.replayed +
                      scratch.counters.repaired + scratch.counters.cold,
                  scratch.counters.rounds)
            << "seed " << seed;
        totals.reused += scratch.counters.reused;
        totals.replayed += scratch.counters.replayed;
        totals.repaired += scratch.counters.repaired;
        totals.cold += scratch.counters.cold;
    }
    // The sequences must actually exercise every path, or the equality
    // checks above prove nothing about the fast paths.
    EXPECT_GT(totals.reused, 0u);
    EXPECT_GT(totals.replayed, 0u);
    EXPECT_GT(totals.repaired, 0u);
    EXPECT_GT(totals.cold, 0u);
}

// Small instances: incremental == cold byte-for-byte AND the oracle
// sandwich holds every round (the greedy never beats the exact optimum,
// and its fractional bound covers its own value).
TEST(mckp_incremental, small_instances_respect_the_exhaustive_oracle) {
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        rng gen(seed * 104729);
        mckp_incremental_scratch scratch;
        auto items = random_instance(gen, 5);
        for (int round = 0; round < 8; ++round) {
            mutate(items, gen);
            if (items.size() > 6) items.resize(6); // keep enumeration tractable
            const double budget = gen.uniform(0.0, 60.0);
            const mckp_solution fresh = select_presentations(items, budget);
            const mckp_solution& inc =
                select_presentations_incremental(items, budget, {}, scratch);
            expect_same(fresh, inc, seed, round);

            const auto exact = mckp_oracle(items, budget);
            EXPECT_LE(inc.total_utility, exact.total_utility + eps)
                << "seed " << seed << " round " << round;
            EXPECT_GE(inc.fractional_bound, inc.total_utility - eps)
                << "seed " << seed << " round " << round;
        }
    }
}

// Deterministic path coverage: a stable instance reuses, the first budget
// change on a stable instance pays the recording pass (warmup hysteresis —
// churny rounds take a plain cold solve and never record), the next budget
// change replays the schedule, a single re-price repairs, and wholesale
// churn or a size change falls back to a plain cold solve. Each step still
// matches the cold solver.
TEST(mckp_incremental, takes_the_expected_fast_path_per_round) {
    rng gen(42);
    mckp_incremental_scratch scratch;
    auto items = random_instance(gen, 0); // force empty, then grow
    items.clear();
    for (int i = 0; i < 8; ++i) items.push_back(random_item(gen));
    const mckp_options options;

    auto solve_and_check = [&](double budget) {
        const mckp_solution fresh = select_presentations(items, budget, options);
        const mckp_solution& inc =
            select_presentations_incremental(items, budget, options, scratch);
        expect_same(fresh, inc, 42, -1);
    };

    solve_and_check(40.0); // first call: plain cold + baseline snapshot
    EXPECT_EQ(scratch.counters.cold, 1u);

    solve_and_check(40.0); // identical round: pure reuse, no schedule needed
    EXPECT_EQ(scratch.counters.reused, 1u);

    solve_and_check(25.0); // stable menus + new budget: record the schedule
    EXPECT_EQ(scratch.counters.cold, 2u);

    solve_and_check(30.0); // budget moved again: schedule replay
    EXPECT_EQ(scratch.counters.replayed, 1u);

    items[3].utilities[0] = 7.5; // one re-priced item: bounded repair
    solve_and_check(30.0);
    EXPECT_EQ(scratch.counters.repaired, 1u);

    for (mckp_item& item : items) item = random_item(gen); // heavy churn
    solve_and_check(30.0);
    EXPECT_EQ(scratch.counters.cold, 3u);

    items.push_back(random_item(gen)); // structural: instance grew
    solve_and_check(30.0);
    EXPECT_EQ(scratch.counters.cold, 4u);
    EXPECT_EQ(scratch.counters.rounds, 7u);
}

// A repair must not poison later rounds: after repairing, going back to the
// exact baseline menus must still produce the baseline solution (the
// schedule is never mutated by replay/repair).
TEST(mckp_incremental, repair_leaves_the_recorded_schedule_intact) {
    rng gen(77);
    mckp_incremental_scratch scratch;
    std::vector<mckp_item> items;
    for (int i = 0; i < 10; ++i) items.push_back(random_item(gen));
    const std::vector<mckp_item> baseline = items;

    const mckp_solution first = select_presentations_incremental(items, 50.0, {}, scratch);
    const std::vector<richnote::core::level_t> first_levels = first.levels;

    // A stable round with a new budget records the schedule (hysteresis).
    select_presentations_incremental(items, 60.0, {}, scratch);
    EXPECT_EQ(scratch.counters.cold, 2u);

    items[2].utilities.back() = 9.0; // repair round against that schedule
    select_presentations_incremental(items, 60.0, {}, scratch);
    EXPECT_EQ(scratch.counters.repaired, 1u);

    items = baseline; // back to the recorded menus, original budget: replay
    const mckp_solution& again = select_presentations_incremental(items, 50.0, {}, scratch);
    EXPECT_EQ(scratch.counters.replayed, 1u);
    EXPECT_EQ(again.levels, first_levels);
    const mckp_solution fresh = select_presentations(items, 50.0, {});
    expect_same(fresh, again, 77, -1);
}

} // namespace

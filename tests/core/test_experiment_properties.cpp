// Parameterized end-to-end invariants: for EVERY scheduler at EVERY budget,
// aggregate metrics must satisfy basic sanity relations, plus the
// transfer-failure injection behaviours.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/experiment.hpp"

namespace {

using richnote::core::experiment_params;
using richnote::core::experiment_setup;
using richnote::core::run_experiment;
using richnote::core::scheduler_kind;

const experiment_setup& shared_setup() {
    static const experiment_setup setup([] {
        experiment_setup::options opts;
        opts.workload.user_count = 30;
        opts.workload.catalog.artist_count = 50;
        opts.workload.playlist_count = 10;
        opts.forest.tree_count = 6;
        opts.seed = 77;
        return opts;
    }());
    return setup;
}

class experiment_invariants
    : public ::testing::TestWithParam<std::tuple<scheduler_kind, double>> {};

TEST_P(experiment_invariants, aggregates_are_internally_consistent) {
    const auto [kind, budget] = GetParam();
    experiment_params params;
    params.kind = kind;
    params.fixed_level = 3;
    params.weekly_budget_mb = budget;
    params.seed = 3;
    const auto r = run_experiment(shared_setup(), params);

    EXPECT_GE(r.delivery_ratio, 0.0);
    EXPECT_LE(r.delivery_ratio, 1.0);
    EXPECT_GE(r.recall, 0.0);
    EXPECT_LE(r.recall, 1.0);
    EXPECT_GE(r.precision, 0.0);
    EXPECT_LE(r.precision, 1.0);
    // Precision counts before-click deliveries, recall any delivery of a
    // clicked item, so recall-weight >= precision-weight relations hold
    // element-wise; at the aggregate level both are within [0,1] above.
    EXPECT_GE(r.delivered_mb, 0.0);
    EXPECT_GE(r.delivered_mb, r.metered_mb - 1e-9); // metered subset of total
    EXPECT_GE(r.total_utility, 0.0);
    EXPECT_GE(r.total_utility, r.utility_clicked - 1e-9); // clicked subset
    EXPECT_GE(r.avg_utility, 0.0);
    EXPECT_LE(r.avg_utility, 1.0); // U = U_c * U_p, both in [0,1]
    EXPECT_GE(r.energy_kj, 0.0);
    EXPECT_GE(r.mean_delay_min, 0.0);
    EXPECT_EQ(r.rounds_run, 169u);

    // Level mix is a distribution over {undelivered, levels 1..6}.
    double mix_total = 0.0;
    for (double f : r.level_mix) {
        EXPECT_GE(f, -1e-12);
        mix_total += f;
    }
    EXPECT_NEAR(mix_total, 1.0, 1e-9);
    // Delivery ratio is exactly 1 - undelivered fraction.
    EXPECT_NEAR(r.delivery_ratio, 1.0 - r.level_mix[0], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    kinds_and_budgets, experiment_invariants,
    ::testing::Combine(::testing::Values(scheduler_kind::richnote, scheduler_kind::fifo,
                                         scheduler_kind::util, scheduler_kind::direct),
                       ::testing::Values(1.0, 10.0, 100.0)),
    [](const ::testing::TestParamInfo<std::tuple<scheduler_kind, double>>& info) {
        return std::string(to_string(std::get<0>(info.param))) + "_mb" +
               std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// --------------------------------------------------- transfer failures ----

TEST(transfer_failures, lossless_by_default) {
    experiment_params params;
    params.weekly_budget_mb = 10.0;
    params.seed = 5;
    const auto clean = run_experiment(shared_setup(), params);
    params.transfer_failure_prob = 0.0;
    const auto explicit_zero = run_experiment(shared_setup(), params);
    EXPECT_DOUBLE_EQ(clean.total_utility, explicit_zero.total_utility);
}

TEST(transfer_failures, loss_reduces_but_does_not_break_delivery) {
    experiment_params params;
    params.weekly_budget_mb = 10.0;
    params.seed = 5;
    const auto clean = run_experiment(shared_setup(), params);

    params.transfer_failure_prob = 0.3;
    const auto lossy = run_experiment(shared_setup(), params);
    // Retries recover most items eventually, but the wasted budget and the
    // tail of unlucky retries cost some delivery and some utility.
    EXPECT_LT(lossy.total_utility, clean.total_utility);
    EXPECT_LE(lossy.delivery_ratio, clean.delivery_ratio + 1e-9);
    EXPECT_GT(lossy.delivery_ratio, 0.5); // the retry path works
}

TEST(transfer_failures, certain_loss_delivers_nothing_but_burns_energy) {
    experiment_params params;
    params.weekly_budget_mb = 10.0;
    params.transfer_failure_prob = 1.0;
    params.seed = 5;
    const auto r = run_experiment(shared_setup(), params);
    EXPECT_DOUBLE_EQ(r.delivery_ratio, 0.0);
    EXPECT_GT(r.energy_kj, 0.0); // failed attempts still spent radio energy
}

TEST(transfer_failures, rejects_invalid_probability) {
    experiment_params params;
    params.weekly_budget_mb = 10.0;
    params.transfer_failure_prob = 1.5;
    EXPECT_THROW(run_experiment(shared_setup(), params), richnote::precondition_error);
}

} // namespace

// Integration tests: the full §V pipeline (workload -> training -> brokers
// on the event simulator -> aggregated metrics) at reduced scale, checking
// the qualitative results the paper reports.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using richnote::core::experiment_params;
using richnote::core::experiment_result;
using richnote::core::experiment_setup;
using richnote::core::run_experiment;
using richnote::core::scheduler_kind;

/// One shared setup for the whole suite — building workloads and training
/// forests per-test would dominate runtime.
class experiment_test : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        experiment_setup::options opts;
        opts.workload.user_count = 40;
        opts.workload.catalog.artist_count = 80;
        opts.workload.playlist_count = 15;
        opts.forest.tree_count = 10;
        opts.seed = 21;
        setup_ = new experiment_setup(opts);
    }
    static void TearDownTestSuite() {
        delete setup_;
        setup_ = nullptr;
    }

    static experiment_params params_for(scheduler_kind kind, double budget_mb) {
        experiment_params p;
        p.kind = kind;
        p.weekly_budget_mb = budget_mb;
        p.fixed_level = 3;
        p.seed = 5;
        return p;
    }

    static experiment_setup* setup_;
};

experiment_setup* experiment_test::setup_ = nullptr;

TEST_F(experiment_test, richnote_delivers_nearly_everything_at_any_budget) {
    // Fig. 3(a): "RichNote always delivers close to 100% notifications".
    for (double budget : {2.0, 20.0}) {
        const auto r = run_experiment(*setup_, params_for(scheduler_kind::richnote, budget));
        EXPECT_GT(r.delivery_ratio, 0.95) << "budget " << budget;
    }
}

TEST_F(experiment_test, baseline_delivery_grows_with_budget) {
    // Fig. 3(a): FIFO/UTIL "need a higher data budget to deliver more".
    const auto lo = run_experiment(*setup_, params_for(scheduler_kind::fifo, 2.0));
    const auto hi = run_experiment(*setup_, params_for(scheduler_kind::fifo, 50.0));
    EXPECT_LT(lo.delivery_ratio, 0.6);
    EXPECT_GT(hi.delivery_ratio, lo.delivery_ratio + 0.2);
}

TEST_F(experiment_test, richnote_recall_beats_baselines_at_low_budget) {
    // Fig. 3(c).
    const double budget = 5.0;
    const auto rn = run_experiment(*setup_, params_for(scheduler_kind::richnote, budget));
    const auto fifo = run_experiment(*setup_, params_for(scheduler_kind::fifo, budget));
    const auto util = run_experiment(*setup_, params_for(scheduler_kind::util, budget));
    EXPECT_GT(rn.recall, fifo.recall);
    EXPECT_GT(rn.recall, util.recall);
    EXPECT_GT(rn.recall, 0.9);
}

TEST_F(experiment_test, richnote_doubles_utility_at_generous_budget) {
    // Fig. 4(a): "RichNote doubles notification utility value compared to
    // the baseline methods" (clearest at generous budgets, where the
    // baselines are stuck at their fixed presentation level).
    const auto rn = run_experiment(*setup_, params_for(scheduler_kind::richnote, 80.0));
    const auto util = run_experiment(*setup_, params_for(scheduler_kind::util, 80.0));
    EXPECT_GT(rn.total_utility, 1.5 * util.total_utility);
}

TEST_F(experiment_test, richnote_queuing_delay_is_lowest) {
    // Fig. 4(d).
    const double budget = 5.0;
    const auto rn = run_experiment(*setup_, params_for(scheduler_kind::richnote, budget));
    const auto fifo = run_experiment(*setup_, params_for(scheduler_kind::fifo, budget));
    EXPECT_LT(rn.mean_delay_min, fifo.mean_delay_min);
}

TEST_F(experiment_test, presentation_mix_shifts_with_budget) {
    // Fig. 5(b): more budget -> richer levels. Compare the 40 s share.
    const auto lo = run_experiment(*setup_, params_for(scheduler_kind::richnote, 3.0));
    const auto hi = run_experiment(*setup_, params_for(scheduler_kind::richnote, 60.0));
    ASSERT_EQ(lo.level_mix.size(), 7u);
    EXPECT_GT(hi.level_mix[6], lo.level_mix[6] + 0.2);
    // At 3 MB most deliveries are metadata-only.
    EXPECT_GT(lo.level_mix[1], 0.5);
}

TEST_F(experiment_test, wifi_enables_richer_presentations) {
    // Fig. 5(c): with WIFI in the Markov model, presentations get richer at
    // the same cellular budget.
    auto cell = params_for(scheduler_kind::richnote, 5.0);
    auto wifi = params_for(scheduler_kind::richnote, 5.0);
    wifi.wifi_enabled = true;
    const auto cell_r = run_experiment(*setup_, cell);
    const auto wifi_r = run_experiment(*setup_, wifi);
    EXPECT_GT(wifi_r.level_mix[6], cell_r.level_mix[6]);
    EXPECT_GT(wifi_r.delivered_mb, cell_r.delivered_mb);
    // WiFi bytes are unmetered: metered consumption must not exceed the
    // cellular-only run's.
    EXPECT_LE(wifi_r.metered_mb, cell_r.delivered_mb + 1e-9);
}

TEST_F(experiment_test, heavier_users_accumulate_more_utility) {
    // Fig. 5(d): "users with higher number of items benefit more".
    const auto r = run_experiment(*setup_, params_for(scheduler_kind::richnote, 20.0));
    ASSERT_GE(r.user_categories.size(), 2u);
    double first_mean = 0.0;
    double last_mean = 0.0;
    for (const auto& row : r.user_categories) {
        if (row.users > 0 && first_mean == 0.0) first_mean = row.mean_utility;
        if (row.users > 0) last_mean = row.mean_utility;
    }
    EXPECT_GT(last_mean, first_mean);
}

TEST_F(experiment_test, results_are_deterministic) {
    const auto a = run_experiment(*setup_, params_for(scheduler_kind::richnote, 10.0));
    const auto b = run_experiment(*setup_, params_for(scheduler_kind::richnote, 10.0));
    EXPECT_DOUBLE_EQ(a.total_utility, b.total_utility);
    EXPECT_DOUBLE_EQ(a.delivered_mb, b.delivered_mb);
    EXPECT_DOUBLE_EQ(a.precision, b.precision);
    EXPECT_EQ(a.rounds_run, b.rounds_run);
}

TEST_F(experiment_test, runs_one_round_per_hour_plus_final_tick) {
    const auto r = run_experiment(*setup_, params_for(scheduler_kind::richnote, 10.0));
    EXPECT_EQ(r.rounds_run, 169u); // 7 * 24 + 1
}

TEST_F(experiment_test, scheduler_names_distinguish_levels) {
    auto p = params_for(scheduler_kind::util, 10.0);
    p.fixed_level = 2;
    const auto r = run_experiment(*setup_, p);
    EXPECT_EQ(r.scheduler_name, "UTIL(L2)");
    const auto rn = run_experiment(*setup_, params_for(scheduler_kind::richnote, 10.0));
    EXPECT_EQ(rn.scheduler_name, "RichNote");
}

TEST_F(experiment_test, energy_stays_within_kappa_envelope) {
    // §V-D1: RichNote "strives to control energy consumption and keep it
    // below the specified threshold" of kappa per round per user.
    const auto r = run_experiment(*setup_, params_for(scheduler_kind::richnote, 100.0));
    const double kappa_envelope_kj =
        3.0 * 169.0 * static_cast<double>(setup_->world().user_count());
    EXPECT_LT(r.energy_kj, kappa_envelope_kj);
}

TEST_F(experiment_test, oracle_utility_upper_bounds_learned_utility) {
    experiment_setup::options opts = setup_->opts();
    opts.oracle_utility = true;
    const experiment_setup oracle_setup(opts);
    const auto oracle = run_experiment(oracle_setup, params_for(scheduler_kind::richnote, 20.0));
    const auto learned = run_experiment(*setup_, params_for(scheduler_kind::richnote, 20.0));
    // Same workload, better utility signal: the oracle should not do
    // meaningfully worse (allow a small tolerance — metrics are computed
    // with each run's own utility estimates).
    EXPECT_GT(oracle.delivery_ratio, 0.95);
    EXPECT_GT(learned.delivery_ratio, 0.95);
}

TEST_F(experiment_test, results_are_identical_for_any_worker_count) {
    // §V-C parallelism: users are independent, each broker owns its
    // randomness, so sharding across threads must be bit-identical.
    auto p1 = params_for(scheduler_kind::richnote, 10.0);
    auto p4 = params_for(scheduler_kind::richnote, 10.0);
    p4.worker_threads = 4;
    const auto sequential = run_experiment(*setup_, p1);
    const auto threaded = run_experiment(*setup_, p4);
    EXPECT_DOUBLE_EQ(sequential.total_utility, threaded.total_utility);
    EXPECT_DOUBLE_EQ(sequential.delivered_mb, threaded.delivered_mb);
    EXPECT_DOUBLE_EQ(sequential.precision, threaded.precision);
    EXPECT_DOUBLE_EQ(sequential.energy_kj, threaded.energy_kj);
    EXPECT_DOUBLE_EQ(sequential.mean_delay_min, threaded.mean_delay_min);
    ASSERT_EQ(sequential.level_mix.size(), threaded.level_mix.size());
    for (std::size_t l = 0; l < sequential.level_mix.size(); ++l)
        EXPECT_DOUBLE_EQ(sequential.level_mix[l], threaded.level_mix[l]);
}

TEST_F(experiment_test, direct_scheduler_runs_end_to_end) {
    const auto r = run_experiment(*setup_, params_for(scheduler_kind::direct, 20.0));
    EXPECT_EQ(r.scheduler_name, "Direct");
    EXPECT_GT(r.delivery_ratio, 0.9);
    EXPECT_GT(r.total_utility, 0.0);
}

TEST_F(experiment_test, battery_trace_replay_runs_end_to_end) {
    // §V-C battery input mode: replaying synthesized timestamped battery
    // traces must work and deliver comparably to the closed-loop model
    // (download load is small relative to background drain).
    auto modeled = params_for(scheduler_kind::richnote, 10.0);
    auto traced = params_for(scheduler_kind::richnote, 10.0);
    traced.battery_traces = true;
    const auto a = run_experiment(*setup_, modeled);
    const auto b = run_experiment(*setup_, traced);
    EXPECT_GT(b.delivery_ratio, 0.9);
    EXPECT_NEAR(a.delivery_ratio, b.delivery_ratio, 0.05);
}

TEST(experiment_validation, rejects_nonpositive_budget) {
    experiment_setup::options opts;
    opts.workload.user_count = 10;
    opts.workload.catalog.artist_count = 30;
    opts.workload.horizon = richnote::sim::days;
    opts.forest.tree_count = 3;
    const experiment_setup setup(opts);
    experiment_params p;
    p.weekly_budget_mb = 0.0;
    EXPECT_THROW(run_experiment(setup, p), richnote::precondition_error);
}

} // namespace

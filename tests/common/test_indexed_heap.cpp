#include "common/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::indexed_heap;

TEST(indexed_heap, pop_order_is_descending_priority) {
    indexed_heap<double> heap(5);
    heap.push(0, 1.0);
    heap.push(1, 5.0);
    heap.push(2, 3.0);
    heap.push(3, 4.0);
    heap.push(4, 2.0);
    std::vector<std::size_t> order;
    while (!heap.empty()) order.push_back(heap.pop());
    EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 4, 0}));
}

TEST(indexed_heap, top_reports_id_and_priority) {
    indexed_heap<int> heap(3);
    heap.push(2, 10);
    heap.push(0, 20);
    EXPECT_EQ(heap.top_id(), 0u);
    EXPECT_EQ(heap.top_priority(), 20);
    EXPECT_EQ(heap.priority_of(2), 10);
}

TEST(indexed_heap, update_moves_element_both_directions) {
    indexed_heap<double> heap(3);
    heap.push(0, 1.0);
    heap.push(1, 2.0);
    heap.push(2, 3.0);
    heap.update(0, 10.0); // up
    EXPECT_EQ(heap.top_id(), 0u);
    heap.update(0, 0.5); // down
    EXPECT_EQ(heap.top_id(), 2u);
    EXPECT_TRUE(heap.validate());
}

TEST(indexed_heap, erase_middle_keeps_heap_valid) {
    indexed_heap<int> heap(10);
    for (std::size_t i = 0; i < 10; ++i) heap.push(i, static_cast<int>(i * 7 % 10));
    heap.erase(4);
    heap.erase(9);
    EXPECT_FALSE(heap.contains(4));
    EXPECT_EQ(heap.size(), 8u);
    EXPECT_TRUE(heap.validate());
}

TEST(indexed_heap, build_is_equivalent_to_pushes) {
    std::vector<std::pair<std::size_t, int>> items;
    for (std::size_t i = 0; i < 50; ++i) items.emplace_back(i, static_cast<int>(i * 13 % 17));
    indexed_heap<int> built(50);
    built.build(items);
    indexed_heap<int> pushed(50);
    for (const auto& [id, p] : items) pushed.push(id, p);
    EXPECT_TRUE(built.validate());
    while (!built.empty()) {
        EXPECT_EQ(built.top_priority(), pushed.top_priority());
        built.pop();
        pushed.pop();
    }
    EXPECT_TRUE(pushed.empty());
}

TEST(indexed_heap, rejects_duplicate_ids_and_out_of_range) {
    indexed_heap<int> heap(2);
    heap.push(0, 1);
    EXPECT_THROW(heap.push(0, 2), richnote::precondition_error);
    EXPECT_THROW(heap.push(5, 1), richnote::precondition_error);
    EXPECT_THROW(heap.update(1, 3), richnote::precondition_error);
    EXPECT_THROW(heap.erase(1), richnote::precondition_error);
}

TEST(indexed_heap, empty_heap_operations_throw) {
    indexed_heap<int> heap(1);
    EXPECT_THROW(heap.top_id(), richnote::precondition_error);
    EXPECT_THROW(heap.pop(), richnote::precondition_error);
}

TEST(indexed_heap, reserve_ids_grows_capacity) {
    indexed_heap<int> heap(1);
    heap.reserve_ids(10);
    heap.push(9, 42);
    EXPECT_EQ(heap.top_id(), 9u);
}

TEST(indexed_heap, clear_empties_and_allows_reuse) {
    indexed_heap<int> heap(3);
    heap.push(0, 1);
    heap.push(1, 2);
    heap.clear();
    EXPECT_TRUE(heap.empty());
    EXPECT_FALSE(heap.contains(0));
    heap.push(0, 5);
    EXPECT_EQ(heap.top_id(), 0u);
}

/// Randomized differential test against std::priority_queue: interleave
/// pushes, pops and updates; after updates settle, pop order must match a
/// reference rebuilt from the surviving (id, priority) pairs.
TEST(indexed_heap, randomized_differential_against_reference) {
    richnote::rng gen(123);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 200;
        indexed_heap<double> heap(n);
        std::vector<double> priority(n, 0.0);
        std::vector<bool> present(n, false);

        for (int op = 0; op < 1000; ++op) {
            const std::size_t id = gen.index(n);
            const double p = gen.uniform();
            if (!present[id]) {
                heap.push(id, p);
                priority[id] = p;
                present[id] = true;
            } else if (gen.bernoulli(0.5)) {
                heap.update(id, p);
                priority[id] = p;
            } else {
                heap.erase(id);
                present[id] = false;
            }
        }
        ASSERT_TRUE(heap.validate());

        std::vector<double> expected;
        for (std::size_t id = 0; id < n; ++id)
            if (present[id]) expected.push_back(priority[id]);
        std::sort(expected.begin(), expected.end(), std::greater<>());

        std::vector<double> actual;
        while (!heap.empty()) {
            actual.push_back(heap.top_priority());
            heap.pop();
        }
        EXPECT_EQ(actual, expected);
    }
}

} // namespace

#include "common/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::bootstrap_ci;
using richnote::rng;

std::vector<double> normal_sample(std::size_t n, double mean, double sd,
                                  std::uint64_t seed) {
    rng gen(seed);
    std::vector<double> values(n);
    for (auto& v : values) v = gen.normal(mean, sd);
    return values;
}

double mean_of(const std::vector<double>& data, const std::vector<std::size_t>& index) {
    double sum = 0;
    for (std::size_t i : index) sum += data[i];
    return sum / static_cast<double>(index.size());
}

TEST(bootstrap, estimate_is_the_plain_statistic) {
    const auto data = normal_sample(200, 5.0, 1.0, 3);
    const auto result = bootstrap_ci(data.size(), 200, 0.95, 1,
                                     [&](const auto& idx) { return mean_of(data, idx); });
    double direct = 0;
    for (double v : data) direct += v;
    direct /= static_cast<double>(data.size());
    EXPECT_DOUBLE_EQ(result.estimate, direct);
}

TEST(bootstrap, interval_brackets_the_truth_and_the_estimate) {
    const auto data = normal_sample(400, 10.0, 2.0, 7);
    const auto result = bootstrap_ci(data.size(), 500, 0.95, 2,
                                     [&](const auto& idx) { return mean_of(data, idx); });
    EXPECT_LT(result.lo, result.hi);
    EXPECT_GE(result.estimate, result.lo - 1e-9);
    EXPECT_LE(result.estimate, result.hi + 1e-9);
    EXPECT_GT(result.hi, 10.0 - 0.5);
    EXPECT_LT(result.lo, 10.0 + 0.5);
}

TEST(bootstrap, stderr_matches_theory_for_the_mean) {
    // SE of the mean is sd / sqrt(n); the bootstrap should come close.
    const std::size_t n = 500;
    const auto data = normal_sample(n, 0.0, 3.0, 11);
    const auto result = bootstrap_ci(n, 800, 0.95, 3,
                                     [&](const auto& idx) { return mean_of(data, idx); });
    const double theory = 3.0 / std::sqrt(static_cast<double>(n));
    EXPECT_NEAR(result.stderr_boot, theory, theory * 0.3);
}

TEST(bootstrap, interval_narrows_with_sample_size) {
    const auto small = normal_sample(50, 0.0, 1.0, 13);
    const auto large = normal_sample(5000, 0.0, 1.0, 13);
    const auto rs = bootstrap_ci(small.size(), 300, 0.95, 4,
                                 [&](const auto& idx) { return mean_of(small, idx); });
    const auto rl = bootstrap_ci(large.size(), 300, 0.95, 4,
                                 [&](const auto& idx) { return mean_of(large, idx); });
    EXPECT_LT(rl.hi - rl.lo, rs.hi - rs.lo);
}

TEST(bootstrap, deterministic_under_seed) {
    const auto data = normal_sample(100, 1.0, 1.0, 17);
    auto stat = [&](const auto& idx) { return mean_of(data, idx); };
    const auto a = bootstrap_ci(data.size(), 100, 0.9, 5, stat);
    const auto b = bootstrap_ci(data.size(), 100, 0.9, 5, stat);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(bootstrap, wider_confidence_gives_wider_interval) {
    const auto data = normal_sample(200, 0.0, 1.0, 19);
    auto stat = [&](const auto& idx) { return mean_of(data, idx); };
    const auto narrow = bootstrap_ci(data.size(), 400, 0.5, 6, stat);
    const auto wide = bootstrap_ci(data.size(), 400, 0.99, 6, stat);
    EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(bootstrap, rejects_bad_arguments) {
    auto stat = [](const std::vector<std::size_t>&) { return 0.0; };
    EXPECT_THROW(bootstrap_ci(0, 100, 0.95, 1, stat), richnote::precondition_error);
    EXPECT_THROW(bootstrap_ci(10, 5, 0.95, 1, stat), richnote::precondition_error);
    EXPECT_THROW(bootstrap_ci(10, 100, 1.0, 1, stat), richnote::precondition_error);
    EXPECT_THROW(bootstrap_ci(10, 100, 0.95, 1, nullptr), richnote::precondition_error);
}

} // namespace

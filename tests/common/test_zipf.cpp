#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::zipf_distribution;

TEST(zipf, pmf_sums_to_one) {
    zipf_distribution z(100, 1.2);
    double total = 0;
    for (std::size_t k = 0; k < z.size(); ++k) total += z.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(zipf, pmf_is_monotone_decreasing) {
    zipf_distribution z(50, 0.9);
    for (std::size_t k = 1; k < z.size(); ++k) EXPECT_LE(z.pmf(k), z.pmf(k - 1));
}

TEST(zipf, pmf_out_of_range_is_zero) {
    zipf_distribution z(10, 1.0);
    EXPECT_DOUBLE_EQ(z.pmf(10), 0.0);
    EXPECT_DOUBLE_EQ(z.pmf(1000), 0.0);
}

TEST(zipf, exponent_zero_is_uniform) {
    zipf_distribution z(4, 0.0);
    for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(z.pmf(k), 0.25, 1e-12);
}

TEST(zipf, ratio_of_first_two_masses_matches_exponent) {
    zipf_distribution z(1000, 2.0);
    EXPECT_NEAR(z.pmf(0) / z.pmf(1), 4.0, 1e-9); // (2/1)^2
}

TEST(zipf, samples_match_pmf) {
    zipf_distribution z(10, 1.0);
    richnote::rng gen(5);
    std::vector<int> counts(10, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i) ++counts[z.sample(gen)];
    for (std::size_t k = 0; k < 10; ++k)
        EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01);
}

TEST(zipf, sample_is_always_in_range) {
    zipf_distribution z(7, 1.5);
    richnote::rng gen(1);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(gen), 7u);
}

TEST(zipf, single_rank_always_sampled) {
    zipf_distribution z(1, 1.0);
    richnote::rng gen(2);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(gen), 0u);
}

TEST(zipf, rejects_bad_parameters) {
    EXPECT_THROW(zipf_distribution(0, 1.0), richnote::precondition_error);
    EXPECT_THROW(zipf_distribution(5, -0.1), richnote::precondition_error);
}

} // namespace

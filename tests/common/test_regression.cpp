#include "common/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::fit_linear;
using richnote::fit_log_law;
using richnote::fit_power_law;

TEST(fit_linear, recovers_exact_line) {
    const std::vector<double> x = {0, 1, 2, 3, 4};
    std::vector<double> y;
    for (double xi : x) y.push_back(2.5 - 0.7 * xi);
    const auto fit = fit_linear(x, y);
    EXPECT_NEAR(fit.intercept, 2.5, 1e-12);
    EXPECT_NEAR(fit.slope, -0.7, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
    EXPECT_NEAR(fit.rmse, 0.0, 1e-12);
}

TEST(fit_linear, tolerates_noise) {
    richnote::rng gen(3);
    std::vector<double> x, y;
    for (int i = 0; i < 2000; ++i) {
        const double xi = gen.uniform(0, 10);
        x.push_back(xi);
        y.push_back(1.0 + 3.0 * xi + gen.normal(0, 0.5));
    }
    const auto fit = fit_linear(x, y);
    EXPECT_NEAR(fit.intercept, 1.0, 0.1);
    EXPECT_NEAR(fit.slope, 3.0, 0.02);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(fit_linear, rejects_degenerate_input) {
    EXPECT_THROW(fit_linear({1.0}, {2.0}), richnote::precondition_error);
    EXPECT_THROW(fit_linear({1, 1, 1}, {1, 2, 3}), richnote::precondition_error);
    EXPECT_THROW(fit_linear({1, 2}, {1, 2, 3}), richnote::precondition_error);
}

// The paper's Eq. 8: util(d) = -0.397 + 0.352 * log(1 + d). Sampling that
// law must recover the published coefficients.
TEST(fit_log_law, recovers_paper_equation_8) {
    const std::vector<double> d = {5, 10, 20, 30, 40};
    std::vector<double> util;
    for (double di : d) util.push_back(-0.397 + 0.352 * std::log(1.0 + di));
    const auto fit = fit_log_law(d, util);
    EXPECT_NEAR(fit.intercept, -0.397, 1e-9);
    EXPECT_NEAR(fit.slope, 0.352, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(fit_log_law, rejects_negative_durations) {
    EXPECT_THROW(fit_log_law({-1.0, 2.0}, {0.1, 0.2}), richnote::precondition_error);
}

// The paper's Eq. 9: util(d) = 0.253 * (1 - d/40)^2.087. The grid-search
// fit must recover all three constants when D=40 lies inside the grid.
TEST(fit_power_law, recovers_paper_equation_9) {
    const std::vector<double> d = {5, 10, 20, 30, 39};
    std::vector<double> util;
    for (double di : d) util.push_back(0.253 * std::pow(1.0 - di / 40.0, 2.087));
    const auto fit = fit_power_law(d, util, 60.0, 2000);
    EXPECT_NEAR(fit.horizon, 40.0, 0.2);
    EXPECT_NEAR(fit.scale, 0.253, 0.01);
    EXPECT_NEAR(fit.exponent, 2.087, 0.1);
    EXPECT_GT(fit.r_squared, 0.999);
}

TEST(fit_power_law, evaluate_is_zero_beyond_horizon) {
    richnote::power_fit fit;
    fit.scale = 1.0;
    fit.exponent = 2.0;
    fit.horizon = 40.0;
    EXPECT_DOUBLE_EQ(fit.evaluate(40.0), 0.0);
    EXPECT_DOUBLE_EQ(fit.evaluate(50.0), 0.0);
    EXPECT_GT(fit.evaluate(10.0), 0.0);
}

TEST(fit_power_law, rejects_nonpositive_utilities) {
    EXPECT_THROW(fit_power_law({1, 2}, {0.0, 0.5}, 10.0), richnote::precondition_error);
}

TEST(fit_power_law, rejects_horizon_below_max_duration) {
    EXPECT_THROW(fit_power_law({1, 20}, {0.5, 0.1}, 15.0), richnote::precondition_error);
}

TEST(goodness_of_fit, r_squared_bounds) {
    const std::vector<double> y = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(richnote::r_squared(y, y), 1.0);
    const std::vector<double> mean_pred = {2.5, 2.5, 2.5, 2.5};
    EXPECT_NEAR(richnote::r_squared(y, mean_pred), 0.0, 1e-12);
}

TEST(goodness_of_fit, rmse_known_value) {
    EXPECT_DOUBLE_EQ(richnote::rmse({0.0, 0.0}, {3.0, 4.0}),
                     std::sqrt((9.0 + 16.0) / 2.0));
    EXPECT_THROW(richnote::rmse({}, {}), richnote::precondition_error);
}

// Model selection as in §V-B: on data generated from the log law, the
// logarithmic family must fit better than the polynomial family.
TEST(model_selection, log_law_wins_on_log_data) {
    richnote::rng gen(11);
    std::vector<double> d, util;
    for (int i = 0; i < 200; ++i) {
        const double di = gen.uniform(1.0, 40.0);
        d.push_back(di);
        util.push_back(std::max(0.01, -0.397 + 0.352 * std::log(1.0 + di) +
                                          gen.normal(0, 0.01)));
    }
    const auto log_fit = fit_log_law(d, util);
    const auto poly_fit = fit_power_law(d, util, 80.0, 200);
    EXPECT_LT(log_fit.rmse, poly_fit.rmse);
}

} // namespace

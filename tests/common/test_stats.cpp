#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::pearson;
using richnote::percentile;
using richnote::running_stats;

TEST(running_stats, empty_accumulator_is_zeroed) {
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(running_stats, single_value) {
    running_stats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(running_stats, matches_naive_computation) {
    const std::vector<double> values = {1.0, 2.0, 4.0, 8.0, 16.0};
    running_stats s;
    double sum = 0;
    for (double v : values) {
        s.add(v);
        sum += v;
    }
    const double mean = sum / values.size();
    double var = 0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= values.size();
    EXPECT_DOUBLE_EQ(s.mean(), mean);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 16.0);
}

TEST(running_stats, is_numerically_stable_for_large_offsets) {
    running_stats s;
    const double offset = 1e12;
    for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2));
    EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(running_stats, merge_equals_sequential) {
    richnote::rng gen(5);
    running_stats all, left, right;
    for (int i = 0; i < 500; ++i) {
        const double v = gen.normal(3.0, 2.0);
        all.add(v);
        (i < 200 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(running_stats, merge_with_empty_is_identity) {
    running_stats s;
    s.add(1.0);
    s.add(2.0);
    running_stats empty;
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 1.5);

    running_stats target;
    target.merge(s);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

TEST(percentile, median_of_odd_sample) {
    EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(percentile, interpolates_between_points) {
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(percentile, extremes_are_min_and_max) {
    const std::vector<double> v = {5.0, 9.0, 1.0, 7.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(percentile, rejects_empty_and_bad_quantile) {
    EXPECT_THROW(percentile({}, 0.5), richnote::precondition_error);
    EXPECT_THROW(percentile({1.0}, 1.5), richnote::precondition_error);
}

TEST(pearson, perfect_positive_and_negative_correlation) {
    const std::vector<double> x = {1, 2, 3, 4};
    const std::vector<double> y = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    const std::vector<double> z = {8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(pearson, independent_samples_are_uncorrelated) {
    richnote::rng gen(9);
    std::vector<double> x, y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(gen.normal());
        y.push_back(gen.normal());
    }
    EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(pearson, degenerate_cases_return_zero) {
    EXPECT_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(pearson, rejects_length_mismatch) {
    EXPECT_THROW(pearson({1.0, 2.0}, {1.0}), richnote::precondition_error);
}

} // namespace

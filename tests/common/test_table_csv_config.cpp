#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace {

using richnote::config;
using richnote::csv_escape;
using richnote::csv_writer;
using richnote::format_bytes;
using richnote::format_double;
using richnote::table;

TEST(table, renders_header_rule_and_rows) {
    table t({"a", "bb"});
    t.add_row({"x", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| a |"), std::string::npos);
    EXPECT_NE(out.find("|---|"), std::string::npos);
    EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(table, aligns_columns_to_widest_cell) {
    table t({"col"});
    t.add_row({"longer-cell"});
    const std::string out = t.render();
    EXPECT_NE(out.find("|         col |"), std::string::npos);
}

TEST(table, numeric_rows_use_precision) {
    table t({"v"});
    t.add_numeric_row({1.23456}, 2);
    EXPECT_NE(t.render().find("1.23"), std::string::npos);
}

TEST(table, rejects_mismatched_row_width) {
    table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), richnote::precondition_error);
    EXPECT_THROW(table({}), richnote::precondition_error);
}

TEST(format_helpers, format_double_fixed_precision) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(format_helpers, format_bytes_units) {
    EXPECT_EQ(format_bytes(512), "512B");
    EXPECT_EQ(format_bytes(20'000), "20.0KB");
    EXPECT_EQ(format_bytes(1.5e6), "1.50MB");
    EXPECT_EQ(format_bytes(2.5e9), "2.50GB");
}

TEST(csv, escapes_only_when_needed) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(csv, writes_header_and_rows) {
    std::ostringstream os;
    csv_writer w(os, {"x", "y"});
    w.write_row(std::vector<std::string>{"1", "two,三"});
    w.write_row(std::vector<double>{1.5, 2.0}, 1);
    EXPECT_EQ(os.str(), "x,y\n1,\"two,三\"\n1.5,2.0\n");
    EXPECT_EQ(w.rows_written(), 2u);
}

TEST(csv, rejects_width_mismatch) {
    std::ostringstream os;
    csv_writer w(os, {"x"});
    EXPECT_THROW(w.write_row(std::vector<std::string>{"a", "b"}),
                 richnote::precondition_error);
}

TEST(config, parses_key_value_arguments) {
    const char* argv[] = {"prog", "users=10", "rate=2.5", "name=test", "flag=true"};
    const config cfg = config::from_args(5, argv);
    EXPECT_EQ(cfg.get_int("users", 0), 10);
    EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0.0), 2.5);
    EXPECT_EQ(cfg.get_string("name", ""), "test");
    EXPECT_TRUE(cfg.get_bool("flag", false));
}

TEST(config, fallbacks_apply_when_missing) {
    const config cfg;
    EXPECT_EQ(cfg.get_int("absent", 7), 7);
    EXPECT_FALSE(cfg.has("absent"));
}

TEST(config, rejects_malformed_tokens_and_values) {
    const char* bad[] = {"prog", "noequals"};
    EXPECT_THROW(config::from_args(2, bad), richnote::precondition_error);

    config cfg;
    cfg.set("n", "abc");
    EXPECT_THROW(cfg.get_int("n", 0), richnote::precondition_error);
    cfg.set("b", "maybe");
    EXPECT_THROW(cfg.get_bool("b", false), richnote::precondition_error);
}

TEST(config, restrict_to_catches_typos) {
    config cfg;
    cfg.set("users", "5");
    EXPECT_NO_THROW(cfg.restrict_to({"users", "seed"}));
    cfg.set("usrs", "5");
    EXPECT_THROW(cfg.restrict_to({"users", "seed"}), richnote::precondition_error);
}

TEST(config, last_set_wins_and_order_is_preserved) {
    config cfg;
    cfg.set("a", "1");
    cfg.set("b", "2");
    cfg.set("a", "3");
    EXPECT_EQ(cfg.get_int("a", 0), 3);
    ASSERT_EQ(cfg.keys().size(), 2u);
    EXPECT_EQ(cfg.keys()[0], "a");
}

} // namespace

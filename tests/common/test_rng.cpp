#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace {

using richnote::mix64;
using richnote::rng;

TEST(rng, is_deterministic_for_equal_seeds) {
    rng a(42);
    rng b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_diverge) {
    rng a(1);
    rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(rng, uniform_is_in_unit_interval) {
    rng gen(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = gen.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(rng, uniform_mean_is_near_half) {
    rng gen(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += gen.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(rng, uniform_range_respects_bounds) {
    rng gen(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = gen.uniform(-5.0, 3.0);
        EXPECT_GE(u, -5.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(rng, uniform_int_covers_inclusive_range) {
    rng gen(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = gen.uniform_int(2, 6);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all five values appear in 1000 draws
}

TEST(rng, uniform_int_single_point_range) {
    rng gen(5);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.uniform_int(9, 9), 9);
}

TEST(rng, uniform_int_is_roughly_uniform) {
    rng gen(17);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(gen.uniform_int(0, 9))];
    for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(rng, bernoulli_frequency_matches_p) {
    rng gen(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += gen.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(rng, bernoulli_handles_degenerate_p) {
    rng gen(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(gen.bernoulli(0.0));
        EXPECT_TRUE(gen.bernoulli(1.0));
    }
}

TEST(rng, normal_moments) {
    rng gen(31);
    const int n = 200000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        const double x = gen.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(rng, normal_with_parameters) {
    rng gen(37);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += gen.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(rng, exponential_mean) {
    rng gen(41);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += gen.exponential(0.5);
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(rng, exponential_is_positive) {
    rng gen(43);
    for (int i = 0; i < 1000; ++i) EXPECT_GT(gen.exponential(3.0), 0.0);
}

TEST(rng, poisson_small_mean) {
    rng gen(47);
    const int n = 100000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += gen.poisson(3.5);
    EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(rng, poisson_large_mean_uses_normal_approximation) {
    rng gen(53);
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += gen.poisson(100.0);
    EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(rng, poisson_zero_mean_is_zero) {
    rng gen(59);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.poisson(0.0), 0u);
}

TEST(rng, index_bounds) {
    rng gen(61);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(gen.index(7), 7u);
}

TEST(rng, shuffle_is_a_permutation) {
    rng gen(67);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    gen.shuffle(shuffled);
    EXPECT_NE(shuffled, v); // astronomically unlikely to be identity
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(rng, weighted_index_respects_weights) {
    rng gen(71);
    const std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i) ++counts[gen.weighted_index(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(rng, weighted_index_zero_total_returns_size) {
    rng gen(73);
    const std::vector<double> weights = {0.0, 0.0};
    EXPECT_EQ(gen.weighted_index(weights), weights.size());
}

TEST(rng, split_streams_are_decorrelated) {
    rng parent(79);
    rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (parent() == child()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(rng, mix64_changes_with_input) {
    EXPECT_NE(mix64(0), mix64(1));
    EXPECT_EQ(mix64(12345), mix64(12345));
}

} // namespace

#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace {

using richnote::categorical_histogram;
using richnote::histogram;

TEST(histogram, bins_partition_the_range) {
    histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bin_count(), 5u);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(histogram, values_land_in_their_bins) {
    histogram h(0.0, 10.0, 5);
    h.add(1.0);
    h.add(9.9);
    h.add(5.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(2), 1.0);
    EXPECT_DOUBLE_EQ(h.count(4), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(histogram, out_of_range_clamps_to_edges) {
    histogram h(0.0, 10.0, 5);
    h.add(-3.0);
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(4), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(histogram, weights_accumulate) {
    histogram h(0.0, 1.0, 2);
    h.add(0.2, 2.5);
    h.add(0.7, 0.5);
    EXPECT_DOUBLE_EQ(h.count(0), 2.5);
    EXPECT_DOUBLE_EQ(h.fraction(0), 2.5 / 3.0);
}

TEST(histogram, fraction_of_empty_histogram_is_zero) {
    histogram h(0.0, 1.0, 3);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(histogram, cdf_is_monotone_and_ends_at_one) {
    histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 100; ++i) h.add(i % 10 + 0.5);
    const auto cdf = h.cdf();
    for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
    EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(histogram, rejects_bad_construction) {
    EXPECT_THROW(histogram(0.0, 1.0, 0), richnote::precondition_error);
    EXPECT_THROW(histogram(1.0, 1.0, 3), richnote::precondition_error);
    EXPECT_THROW(histogram(2.0, 1.0, 3), richnote::precondition_error);
}

TEST(categorical_histogram, counts_and_fractions) {
    categorical_histogram h;
    h.add("cell");
    h.add("wifi", 3.0);
    h.add("cell");
    EXPECT_DOUBLE_EQ(h.count("cell"), 2.0);
    EXPECT_DOUBLE_EQ(h.count("wifi"), 3.0);
    EXPECT_DOUBLE_EQ(h.count("off"), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction("wifi"), 0.6);
}

TEST(categorical_histogram, preserves_insertion_order_of_keys) {
    categorical_histogram h;
    h.add("zebra");
    h.add("apple");
    h.add("zebra");
    ASSERT_EQ(h.keys().size(), 2u);
    EXPECT_EQ(h.keys()[0], "zebra");
    EXPECT_EQ(h.keys()[1], "apple");
}

} // namespace

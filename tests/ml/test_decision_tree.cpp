#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::ml::dataset;
using richnote::ml::decision_tree;
using richnote::ml::gini_impurity;
using richnote::ml::tree_params;

TEST(gini, known_values) {
    EXPECT_DOUBLE_EQ(gini_impurity(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(gini_impurity(10, 0), 0.0);
    EXPECT_DOUBLE_EQ(gini_impurity(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(gini_impurity(5, 5), 0.5);
    EXPECT_NEAR(gini_impurity(9, 1), 2.0 * 0.1 * 0.9, 1e-12);
}

dataset threshold_data(double threshold, int n, std::uint64_t seed) {
    dataset d({"x"});
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const double x = gen.uniform(0, 1);
        d.add_row(std::array{x}, x > threshold ? 1 : 0);
    }
    return d;
}

TEST(decision_tree, learns_a_simple_threshold_exactly) {
    const dataset d = threshold_data(0.5, 500, 3);
    decision_tree tree;
    rng gen(1);
    tree.fit(d, tree_params{}, gen);
    EXPECT_EQ(tree.predict(std::array{0.1}), 0);
    EXPECT_EQ(tree.predict(std::array{0.9}), 1);
    EXPECT_LT(tree.predict_proba(std::array{0.2}), 0.05);
    EXPECT_GT(tree.predict_proba(std::array{0.8}), 0.95);
}

TEST(decision_tree, learns_an_axis_aligned_quadrant) {
    dataset d({"x", "y"});
    rng data_gen(5);
    for (int i = 0; i < 2000; ++i) {
        const double x = data_gen.uniform(0, 1);
        const double y = data_gen.uniform(0, 1);
        d.add_row(std::array{x, y}, (x > 0.5 && y > 0.5) ? 1 : 0);
    }
    decision_tree tree;
    rng gen(1);
    tree.fit(d, tree_params{}, gen);
    EXPECT_EQ(tree.predict(std::array{0.8, 0.8}), 1);
    EXPECT_EQ(tree.predict(std::array{0.8, 0.2}), 0);
    EXPECT_EQ(tree.predict(std::array{0.2, 0.8}), 0);
}

TEST(decision_tree, pure_node_needs_no_split) {
    dataset d({"x"});
    for (int i = 0; i < 10; ++i) d.add_row(std::array{static_cast<double>(i)}, 1);
    decision_tree tree;
    rng gen(1);
    tree.fit(d, tree_params{}, gen);
    EXPECT_EQ(tree.node_count(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict_proba(std::array{3.0}), 1.0);
}

TEST(decision_tree, max_depth_limits_tree) {
    const dataset d = threshold_data(0.5, 1000, 7);
    tree_params p;
    p.max_depth = 1;
    decision_tree tree;
    rng gen(1);
    tree.fit(d, p, gen);
    EXPECT_LE(tree.depth(), 2u); // root + one level of children
}

TEST(decision_tree, max_depth_zero_gives_a_stump_prior) {
    const dataset d = threshold_data(0.3, 200, 9);
    tree_params p;
    p.max_depth = 0;
    decision_tree tree;
    rng gen(1);
    tree.fit(d, p, gen);
    EXPECT_EQ(tree.node_count(), 1u);
    // Leaf probability equals the positive fraction.
    EXPECT_NEAR(tree.predict_proba(std::array{0.5}), d.positive_fraction(), 1e-12);
}

TEST(decision_tree, min_samples_split_is_respected) {
    const dataset d = threshold_data(0.5, 20, 11);
    tree_params p;
    p.min_samples_split = 100; // larger than the dataset: no split possible
    decision_tree tree;
    rng gen(1);
    tree.fit(d, p, gen);
    EXPECT_EQ(tree.node_count(), 1u);
}

TEST(decision_tree, probabilities_are_in_unit_interval) {
    const dataset d = threshold_data(0.4, 300, 13);
    decision_tree tree;
    rng gen(1);
    tree.fit(d, tree_params{}, gen);
    rng probe(2);
    for (int i = 0; i < 200; ++i) {
        const double p = tree.predict_proba(std::array{probe.uniform(-1.0, 2.0)});
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(decision_tree, duplicate_rows_from_bootstrap_are_accepted) {
    const dataset d = threshold_data(0.5, 50, 15);
    decision_tree tree;
    rng gen(1);
    const std::vector<std::size_t> rows = {0, 0, 1, 1, 2, 2, 3, 3};
    tree.fit(d, rows, tree_params{}, gen);
    EXPECT_TRUE(tree.trained());
}

TEST(decision_tree, untrained_predict_throws) {
    const decision_tree tree;
    EXPECT_THROW(tree.predict(std::array{1.0}), richnote::precondition_error);
}

TEST(decision_tree, fit_on_empty_rows_throws) {
    const dataset d = threshold_data(0.5, 10, 17);
    decision_tree tree;
    rng gen(1);
    EXPECT_THROW(tree.fit(d, std::vector<std::size_t>{}, tree_params{}, gen),
                 richnote::precondition_error);
}

TEST(decision_tree, constant_features_produce_a_leaf) {
    dataset d({"x"});
    for (int i = 0; i < 20; ++i) d.add_row(std::array{1.0}, i % 2);
    decision_tree tree;
    rng gen(1);
    tree.fit(d, tree_params{}, gen);
    EXPECT_EQ(tree.node_count(), 1u);
    EXPECT_NEAR(tree.predict_proba(std::array{1.0}), 0.5, 1e-12);
}

} // namespace

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/random_forest.hpp"

namespace {

using richnote::rng;
using richnote::ml::dataset;
using richnote::ml::forest_params;
using richnote::ml::random_forest;

dataset training_data(int n, std::uint64_t seed) {
    dataset d({"a", "b", "c"});
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const std::array<double, 3> row = {gen.uniform(-1, 1), gen.uniform(-1, 1),
                                           gen.uniform(-1, 1)};
        d.add_row(row, 2.0 * row[0] - row[1] + 0.5 * row[2] > 0 ? 1 : 0);
    }
    return d;
}

random_forest trained_forest(std::uint64_t seed = 1) {
    random_forest forest;
    forest_params p;
    p.tree_count = 12;
    forest.fit(training_data(800, seed), p, seed);
    return forest;
}

TEST(forest_serialization, round_trip_reproduces_predictions_exactly) {
    const random_forest original = trained_forest();
    std::stringstream buffer;
    original.save(buffer);

    random_forest loaded;
    loaded.load(buffer);
    EXPECT_EQ(loaded.tree_count(), original.tree_count());

    rng probe(9);
    for (int i = 0; i < 500; ++i) {
        const std::array<double, 3> x = {probe.uniform(-2, 2), probe.uniform(-2, 2),
                                         probe.uniform(-2, 2)};
        EXPECT_DOUBLE_EQ(original.predict_proba(x), loaded.predict_proba(x));
    }
}

TEST(forest_serialization, file_round_trip) {
    const random_forest original = trained_forest(7);
    const std::string path = ::testing::TempDir() + "richnote_forest_test.model";
    original.save_file(path);
    random_forest loaded;
    loaded.load_file(path);
    const std::array<double, 3> x = {0.3, -0.2, 0.8};
    EXPECT_DOUBLE_EQ(original.predict_proba(x), loaded.predict_proba(x));
    std::remove(path.c_str());
}

TEST(forest_serialization, load_replaces_existing_model) {
    random_forest a = trained_forest(1);
    const random_forest b = trained_forest(2);
    std::stringstream buffer;
    b.save(buffer);
    a.load(buffer);
    const std::array<double, 3> x = {0.1, 0.5, -0.9};
    EXPECT_DOUBLE_EQ(a.predict_proba(x), b.predict_proba(x));
}

TEST(forest_serialization, oob_accuracy_is_not_persisted) {
    random_forest forest;
    forest_params p;
    p.tree_count = 5;
    p.compute_oob = true;
    forest.fit(training_data(300, 3), p, 3);
    ASSERT_TRUE(forest.oob_accuracy().has_value());
    std::stringstream buffer;
    forest.save(buffer);
    forest.load(buffer);
    EXPECT_FALSE(forest.oob_accuracy().has_value());
}

TEST(forest_serialization, rejects_garbage) {
    random_forest forest;
    std::stringstream wrong_magic("not_a_forest v1 trees 1\n");
    EXPECT_THROW(forest.load(wrong_magic), richnote::precondition_error);
    std::stringstream wrong_version("richnote_forest v9 trees 1\n");
    EXPECT_THROW(forest.load(wrong_version), richnote::precondition_error);
    std::stringstream zero_trees("richnote_forest v1 trees 0\n");
    EXPECT_THROW(forest.load(zero_trees), richnote::precondition_error);
    std::stringstream truncated("richnote_forest v1 trees 1\ntree 2\n0 0.5 1 -1 0.5\n");
    EXPECT_THROW(forest.load(truncated), richnote::precondition_error);
    std::stringstream bad_child("richnote_forest v1 trees 1\ntree 1\n0 0.5 5 6 0.5\n");
    EXPECT_THROW(forest.load(bad_child), richnote::precondition_error);
    std::stringstream bad_proba("richnote_forest v1 trees 1\ntree 1\n0 0.5 -1 -1 1.5\n");
    EXPECT_THROW(forest.load(bad_proba), richnote::precondition_error);
}

TEST(forest_serialization, untrained_save_throws) {
    const random_forest forest;
    std::stringstream buffer;
    EXPECT_THROW(forest.save(buffer), richnote::precondition_error);
}

TEST(forest_serialization, missing_file_throws) {
    random_forest forest;
    EXPECT_THROW(forest.load_file("/nonexistent/model"), richnote::precondition_error);
    const random_forest trained = trained_forest();
    EXPECT_THROW(trained.save_file("/nonexistent/dir/model"),
                 richnote::precondition_error);
}

} // namespace

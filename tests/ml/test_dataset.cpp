#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"

namespace {

using richnote::ml::dataset;

dataset make_dataset() {
    dataset d({"x", "y"});
    d.add_row(std::array{1.0, 2.0}, 0);
    d.add_row(std::array{3.0, 4.0}, 1);
    d.add_row(std::array{5.0, 6.0}, 1);
    return d;
}

TEST(dataset, stores_rows_and_labels) {
    const dataset d = make_dataset();
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d.feature_count(), 2u);
    EXPECT_DOUBLE_EQ(d.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(d.at(2, 1), 6.0);
    EXPECT_EQ(d.label(0), 0);
    EXPECT_EQ(d.label(2), 1);
}

TEST(dataset, row_view_matches_at) {
    const dataset d = make_dataset();
    const auto row = d.row(1);
    ASSERT_EQ(row.size(), 2u);
    EXPECT_DOUBLE_EQ(row[0], 3.0);
    EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(dataset, positive_fraction) {
    const dataset d = make_dataset();
    EXPECT_NEAR(d.positive_fraction(), 2.0 / 3.0, 1e-12);
    dataset empty({"x"});
    EXPECT_DOUBLE_EQ(empty.positive_fraction(), 0.0);
}

TEST(dataset, subset_copies_selected_rows) {
    const dataset d = make_dataset();
    const dataset s = d.subset({2, 0});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.at(0, 0), 5.0);
    EXPECT_EQ(s.label(1), 0);
}

TEST(dataset, subset_rejects_out_of_range) {
    const dataset d = make_dataset();
    EXPECT_THROW(d.subset({3}), richnote::precondition_error);
}

TEST(dataset, train_test_split_partitions_rows) {
    dataset d({"x"});
    for (int i = 0; i < 100; ++i) d.add_row(std::array{static_cast<double>(i)}, i % 2);
    const auto [train, test] = d.train_test_split(0.25, 7);
    EXPECT_EQ(test.size(), 25u);
    EXPECT_EQ(train.size(), 75u);

    // Every original value appears exactly once across the two parts.
    std::vector<int> seen(100, 0);
    for (std::size_t r = 0; r < train.size(); ++r)
        ++seen[static_cast<std::size_t>(train.at(r, 0))];
    for (std::size_t r = 0; r < test.size(); ++r)
        ++seen[static_cast<std::size_t>(test.at(r, 0))];
    for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(dataset, train_test_split_is_deterministic) {
    dataset d({"x"});
    for (int i = 0; i < 50; ++i) d.add_row(std::array{static_cast<double>(i)}, 0);
    const auto [a_train, a_test] = d.train_test_split(0.2, 3);
    const auto [b_train, b_test] = d.train_test_split(0.2, 3);
    for (std::size_t r = 0; r < a_test.size(); ++r)
        EXPECT_DOUBLE_EQ(a_test.at(r, 0), b_test.at(r, 0));
    (void)a_train;
    (void)b_train;
}

TEST(dataset, rejects_bad_rows) {
    dataset d({"x", "y"});
    EXPECT_THROW(d.add_row(std::array{1.0}, 0), richnote::precondition_error);
    EXPECT_THROW(d.add_row(std::array{1.0, 2.0}, 2), richnote::precondition_error);
}

TEST(dataset, rejects_bad_construction_and_split_fraction) {
    EXPECT_THROW(dataset(std::vector<std::string>{}), richnote::precondition_error);
    const dataset d = make_dataset();
    EXPECT_THROW(d.train_test_split(0.0, 1), richnote::precondition_error);
    EXPECT_THROW(d.train_test_split(1.0, 1), richnote::precondition_error);
}

} // namespace

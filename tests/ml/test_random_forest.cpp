#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::ml::dataset;
using richnote::ml::forest_params;
using richnote::ml::random_forest;

/// Noisy logistic data in the spirit of the click trace: label depends on a
/// weighted sum of two features through a sigmoid.
dataset logistic_data(int n, std::uint64_t seed, double noise = 0.5) {
    dataset d({"a", "b"});
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const double a = gen.uniform(-1, 1);
        const double b = gen.uniform(-1, 1);
        const double z = 3.0 * a - 2.0 * b + gen.normal(0, noise);
        d.add_row(std::array{a, b}, z > 0 ? 1 : 0);
    }
    return d;
}

TEST(random_forest, beats_chance_on_logistic_data) {
    const dataset train = logistic_data(3000, 1);
    const dataset test = logistic_data(1000, 2);
    random_forest forest;
    forest_params p;
    p.tree_count = 25;
    forest.fit(train, p, 7);
    int correct = 0;
    for (std::size_t r = 0; r < test.size(); ++r)
        correct += forest.predict(test.row(r)) == test.label(r);
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.85);
}

TEST(random_forest, probabilities_are_averaged_tree_outputs) {
    const dataset train = logistic_data(500, 3);
    random_forest forest;
    forest_params p;
    p.tree_count = 10;
    forest.fit(train, p, 1);
    const double proba = forest.predict_proba(std::array{0.9, -0.9});
    EXPECT_GE(proba, 0.0);
    EXPECT_LE(proba, 1.0);
    EXPECT_GT(proba, 0.5); // strongly positive region
    EXPECT_EQ(forest.predict(std::array{0.9, -0.9}), 1);
}

TEST(random_forest, is_deterministic_under_seed) {
    const dataset train = logistic_data(800, 5);
    random_forest a, b;
    forest_params p;
    p.tree_count = 8;
    a.fit(train, p, 99);
    b.fit(train, p, 99);
    rng probe(1);
    for (int i = 0; i < 100; ++i) {
        const std::array<double, 2> x = {probe.uniform(-1, 1), probe.uniform(-1, 1)};
        EXPECT_DOUBLE_EQ(a.predict_proba(x), b.predict_proba(x));
    }
}

TEST(random_forest, different_seeds_give_different_forests) {
    const dataset train = logistic_data(800, 5);
    random_forest a, b;
    forest_params p;
    p.tree_count = 8;
    a.fit(train, p, 1);
    b.fit(train, p, 2);
    bool any_difference = false;
    rng probe(1);
    for (int i = 0; i < 100 && !any_difference; ++i) {
        const std::array<double, 2> x = {probe.uniform(-1, 1), probe.uniform(-1, 1)};
        any_difference = std::abs(a.predict_proba(x) - b.predict_proba(x)) > 1e-12;
    }
    EXPECT_TRUE(any_difference);
}

TEST(random_forest, oob_accuracy_tracks_test_accuracy) {
    const dataset train = logistic_data(2000, 7);
    const dataset test = logistic_data(1000, 8);
    random_forest forest;
    forest_params p;
    p.tree_count = 30;
    p.compute_oob = true;
    forest.fit(train, p, 3);
    ASSERT_TRUE(forest.oob_accuracy().has_value());
    int correct = 0;
    for (std::size_t r = 0; r < test.size(); ++r)
        correct += forest.predict(test.row(r)) == test.label(r);
    const double test_acc = static_cast<double>(correct) / static_cast<double>(test.size());
    EXPECT_NEAR(*forest.oob_accuracy(), test_acc, 0.06);
}

TEST(random_forest, oob_absent_when_not_requested) {
    const dataset train = logistic_data(200, 9);
    random_forest forest;
    forest_params p;
    p.tree_count = 5;
    forest.fit(train, p, 1);
    EXPECT_FALSE(forest.oob_accuracy().has_value());
}

TEST(random_forest, more_trees_reduce_variance) {
    const dataset train = logistic_data(1500, 11, /*noise=*/1.5);
    const dataset test = logistic_data(600, 12, /*noise=*/1.5);

    auto test_accuracy = [&](std::size_t trees, std::uint64_t seed) {
        random_forest forest;
        forest_params p;
        p.tree_count = trees;
        forest.fit(train, p, seed);
        int correct = 0;
        for (std::size_t r = 0; r < test.size(); ++r)
            correct += forest.predict(test.row(r)) == test.label(r);
        return static_cast<double>(correct) / static_cast<double>(test.size());
    };

    // Accuracy spread across seeds should shrink with the ensemble size.
    auto spread = [&](std::size_t trees) {
        double lo = 1.0, hi = 0.0;
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
            const double acc = test_accuracy(trees, seed);
            lo = std::min(lo, acc);
            hi = std::max(hi, acc);
        }
        return hi - lo;
    };
    EXPECT_LE(spread(40), spread(1) + 0.02);
}

TEST(random_forest, rejects_empty_dataset_and_zero_trees) {
    random_forest forest;
    dataset empty({"x"});
    EXPECT_THROW(forest.fit(empty, forest_params{}, 1), richnote::precondition_error);
    const dataset train = logistic_data(50, 13);
    forest_params p;
    p.tree_count = 0;
    EXPECT_THROW(forest.fit(train, p, 1), richnote::precondition_error);
}

TEST(random_forest, untrained_predict_throws) {
    const random_forest forest;
    EXPECT_THROW(forest.predict(std::array{0.0, 0.0}), richnote::precondition_error);
}

} // namespace

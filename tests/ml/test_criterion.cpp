#include "ml/decision_tree.hpp"
#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::ml::dataset;
using richnote::ml::decision_tree;
using richnote::ml::entropy_impurity;
using richnote::ml::split_criterion;
using richnote::ml::tree_params;

TEST(entropy, known_values) {
    EXPECT_DOUBLE_EQ(entropy_impurity(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(entropy_impurity(10, 0), 0.0);
    EXPECT_DOUBLE_EQ(entropy_impurity(0, 10), 0.0);
    EXPECT_DOUBLE_EQ(entropy_impurity(5, 5), 1.0); // one bit at 50/50
    // Entropy of p = 0.25.
    const double expected = -(0.25 * std::log2(0.25) + 0.75 * std::log2(0.75));
    EXPECT_NEAR(entropy_impurity(3, 1), expected, 1e-12);
}

TEST(entropy, is_symmetric_and_maximal_at_half) {
    EXPECT_DOUBLE_EQ(entropy_impurity(3, 7), entropy_impurity(7, 3));
    EXPECT_GT(entropy_impurity(5, 5), entropy_impurity(2, 8));
}

dataset threshold_data(int n, std::uint64_t seed) {
    dataset d({"x"});
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const double x = gen.uniform(0, 1);
        d.add_row(std::array{x}, x > 0.4 ? 1 : 0);
    }
    return d;
}

TEST(entropy_criterion, learns_the_same_simple_concept_as_gini) {
    const dataset d = threshold_data(600, 3);
    for (const auto criterion : {split_criterion::gini, split_criterion::entropy}) {
        tree_params p;
        p.criterion = criterion;
        decision_tree tree;
        rng gen(1);
        tree.fit(d, p, gen);
        EXPECT_EQ(tree.predict(std::array{0.1}), 0);
        EXPECT_EQ(tree.predict(std::array{0.9}), 1);
    }
}

TEST(entropy_criterion, forest_accepts_the_criterion) {
    richnote::ml::random_forest forest;
    richnote::ml::forest_params p;
    p.tree_count = 8;
    p.tree.criterion = split_criterion::entropy;
    const dataset d = threshold_data(400, 5);
    forest.fit(d, p, 2);
    EXPECT_GT(forest.predict_proba(std::array{0.95}), 0.8);
    EXPECT_LT(forest.predict_proba(std::array{0.05}), 0.2);
}

} // namespace

#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using richnote::rng;
using richnote::ml::auc;
using richnote::ml::confusion_matrix;
using richnote::ml::cross_validate_forest;
using richnote::ml::dataset;
using richnote::ml::evaluate;
using richnote::ml::forest_params;

TEST(confusion_matrix, counts_all_four_cells) {
    confusion_matrix cm;
    cm.add(1, 1); // TP
    cm.add(1, 0); // FN
    cm.add(0, 1); // FP
    cm.add(0, 0); // TN
    EXPECT_EQ(cm.true_positive, 1u);
    EXPECT_EQ(cm.false_negative, 1u);
    EXPECT_EQ(cm.false_positive, 1u);
    EXPECT_EQ(cm.true_negative, 1u);
    EXPECT_EQ(cm.total(), 4u);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
    EXPECT_DOUBLE_EQ(cm.precision(), 0.5);
    EXPECT_DOUBLE_EQ(cm.recall(), 0.5);
    EXPECT_DOUBLE_EQ(cm.f1(), 0.5);
}

TEST(confusion_matrix, degenerate_cases_are_zero_not_nan) {
    confusion_matrix cm;
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
    EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
    EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
    cm.add(0, 0);
    EXPECT_DOUBLE_EQ(cm.precision(), 0.0); // no predicted positives
    EXPECT_DOUBLE_EQ(cm.recall(), 0.0);    // no actual positives
}

TEST(confusion_matrix, perfect_classifier) {
    confusion_matrix cm;
    for (int i = 0; i < 10; ++i) cm.add(i % 2, i % 2);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

dataset tiny_data() {
    dataset d({"x"});
    d.add_row(std::array{0.1}, 0);
    d.add_row(std::array{0.2}, 0);
    d.add_row(std::array{0.8}, 1);
    d.add_row(std::array{0.9}, 1);
    return d;
}

TEST(evaluate_fn, applies_model_row_by_row) {
    const dataset d = tiny_data();
    const auto cm = evaluate(d, [](std::span<const double> row) {
        return row[0] > 0.5 ? 1 : 0;
    });
    EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(auc_fn, perfect_ranking_is_one) {
    const dataset d = tiny_data();
    EXPECT_DOUBLE_EQ(auc(d, [](std::span<const double> row) { return row[0]; }), 1.0);
}

TEST(auc_fn, inverted_ranking_is_zero) {
    const dataset d = tiny_data();
    EXPECT_DOUBLE_EQ(auc(d, [](std::span<const double> row) { return -row[0]; }), 0.0);
}

TEST(auc_fn, constant_scores_are_half) {
    const dataset d = tiny_data();
    EXPECT_DOUBLE_EQ(auc(d, [](std::span<const double>) { return 0.5; }), 0.5);
}

TEST(auc_fn, single_class_is_half) {
    dataset d({"x"});
    d.add_row(std::array{0.1}, 1);
    d.add_row(std::array{0.9}, 1);
    EXPECT_DOUBLE_EQ(auc(d, [](std::span<const double> row) { return row[0]; }), 0.5);
}

dataset separable_data(int n, std::uint64_t seed) {
    dataset d({"a", "b"});
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const double a = gen.uniform(-1, 1);
        const double b = gen.uniform(-1, 1);
        d.add_row(std::array{a, b}, a + b > 0 ? 1 : 0);
    }
    return d;
}

TEST(cross_validation, produces_one_matrix_per_fold) {
    const dataset d = separable_data(500, 1);
    forest_params p;
    p.tree_count = 10;
    const auto result = cross_validate_forest(d, p, 5, 42);
    EXPECT_EQ(result.folds.size(), 5u);
    std::uint64_t total = 0;
    for (const auto& f : result.folds) total += f.total();
    EXPECT_EQ(total, 500u); // every row tested exactly once
}

TEST(cross_validation, accuracy_is_high_on_separable_data) {
    const dataset d = separable_data(1000, 3);
    forest_params p;
    p.tree_count = 15;
    const auto result = cross_validate_forest(d, p, 5, 7);
    EXPECT_GT(result.mean_accuracy(), 0.9);
    EXPECT_GT(result.mean_precision(), 0.85);
    EXPECT_GT(result.mean_recall(), 0.85);
}

TEST(cross_validation, is_deterministic_under_seed) {
    const dataset d = separable_data(300, 5);
    forest_params p;
    p.tree_count = 5;
    const auto a = cross_validate_forest(d, p, 3, 11);
    const auto b = cross_validate_forest(d, p, 3, 11);
    EXPECT_DOUBLE_EQ(a.mean_accuracy(), b.mean_accuracy());
}

TEST(cross_validation, rejects_bad_fold_counts) {
    const dataset d = separable_data(10, 7);
    forest_params p;
    EXPECT_THROW(cross_validate_forest(d, p, 1, 1), richnote::precondition_error);
    EXPECT_THROW(cross_validate_forest(d, p, 11, 1), richnote::precondition_error);
}

TEST(cross_validation_result, empty_result_is_zero) {
    const richnote::ml::cross_validation_result empty;
    EXPECT_DOUBLE_EQ(empty.mean_accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(empty.mean_precision(), 0.0);
    EXPECT_DOUBLE_EQ(empty.mean_recall(), 0.0);
}

} // namespace

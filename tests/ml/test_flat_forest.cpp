#include "ml/flat_forest.hpp"

#include <gtest/gtest.h>

#include <array>
#include <span>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/random_forest.hpp"
#include "ml/simd_dispatch.hpp"

namespace {

using richnote::rng;
using richnote::ml::dataset;
using richnote::ml::flat_forest;
using richnote::ml::forest_params;
using richnote::ml::random_forest;

dataset logistic_data(int n, std::uint64_t seed, double noise = 0.5) {
    dataset d({"a", "b", "c"});
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const double a = gen.uniform(-1, 1);
        const double b = gen.uniform(-1, 1);
        const double c = gen.uniform(-1, 1);
        const double z = 3.0 * a - 2.0 * b + c + gen.normal(0, noise);
        d.add_row(std::array{a, b, c}, z > 0 ? 1 : 0);
    }
    return d;
}

random_forest trained_forest(std::size_t trees = 15, std::uint64_t seed = 7) {
    random_forest forest;
    forest_params p;
    p.tree_count = trees;
    forest.fit(logistic_data(600, 11), p, seed);
    return forest;
}

TEST(flat_forest, predictions_bit_identical_to_source_forest) {
    const random_forest forest = trained_forest();
    const flat_forest flat(forest);
    EXPECT_EQ(flat.tree_count(), forest.tree_count());
    const dataset probe = logistic_data(500, 29);
    for (std::size_t r = 0; r < probe.size(); ++r) {
        // Exact equality on purpose: the flat walk must perform the same
        // floating-point operations in the same order.
        EXPECT_EQ(flat.predict_proba(probe.row(r)), forest.predict_proba(probe.row(r)));
        EXPECT_EQ(flat.predict(probe.row(r)), forest.predict(probe.row(r)));
    }
}

TEST(flat_forest, batched_matches_single_row_exactly) {
    const flat_forest flat(trained_forest());
    const dataset probe = logistic_data(300, 31);
    const std::vector<double> batched = flat.predict_proba(probe);
    ASSERT_EQ(batched.size(), probe.size());
    for (std::size_t r = 0; r < probe.size(); ++r)
        EXPECT_EQ(batched[r], flat.predict_proba(probe.row(r)));
}

TEST(flat_forest, survives_save_load_round_trip) {
    const random_forest forest = trained_forest();
    std::stringstream buffer;
    forest.save(buffer);
    random_forest reloaded;
    reloaded.load(buffer);
    const flat_forest flat_original(forest);
    const flat_forest flat_reloaded(reloaded);
    const dataset probe = logistic_data(200, 37);
    for (std::size_t r = 0; r < probe.size(); ++r)
        EXPECT_EQ(flat_reloaded.predict_proba(probe.row(r)),
                  flat_original.predict_proba(probe.row(r)));
}

TEST(flat_forest, empty_batch_and_default_state) {
    const flat_forest empty;
    EXPECT_FALSE(empty.trained());
    EXPECT_THROW(empty.predict_proba(std::array{0.0, 0.0, 0.0}),
                 richnote::precondition_error);

    const flat_forest flat(trained_forest(5));
    const dataset none({"a", "b", "c"});
    EXPECT_TRUE(flat.predict_proba(none).empty());
}

TEST(flat_forest, rejects_malformed_batch_shapes) {
    const flat_forest flat(trained_forest(5));
    std::vector<double> matrix(9, 0.0); // 3 rows x 3 features
    std::vector<double> out(2);         // wrong: 2 slots for 3 rows
    EXPECT_THROW(flat.predict_proba(matrix, 3, out), richnote::precondition_error);
    out.resize(4);
    EXPECT_THROW(flat.predict_proba(matrix, 4, out), richnote::precondition_error);
}

TEST(flat_forest, simd_and_scalar_kernels_are_bit_identical) {
    namespace simd = richnote::ml::simd;
    const flat_forest flat(trained_forest());
    const dataset probe = logistic_data(1200, 41); // > one 512-row block
    const std::span<const double> matrix{probe.row(0).data(),
                                         probe.size() * probe.feature_count()};

    std::vector<double> scalar_out(probe.size());
    {
        simd::scoped_isa_override force(simd::isa::scalar);
        ASSERT_EQ(simd::active_isa(), simd::isa::scalar);
        flat.predict_proba(matrix, probe.size(), scalar_out);
    }
    // Default dispatch (AVX2 on this host if available, otherwise scalar
    // again — the comparison is then trivially green but still valid).
    std::vector<double> dispatched_out(probe.size());
    flat.predict_proba(matrix, probe.size(), dispatched_out);
    for (std::size_t r = 0; r < probe.size(); ++r) {
        // Exact equality on purpose: every kernel must perform the same
        // comparisons on the same doubles and accumulate in tree order.
        ASSERT_EQ(dispatched_out[r], scalar_out[r]) << "row " << r;
        ASSERT_EQ(scalar_out[r], flat.predict_proba(probe.row(r))) << "row " << r;
    }
}

TEST(flat_forest, quantized_threshold_path_is_bit_identical) {
    // Integer-valued features make every split threshold a midpoint x.0/x.5,
    // which round-trips float exactly, so the builder keeps the 32-bit
    // threshold copy and the SIMD kernel takes the quantized gather path.
    dataset d({"a", "b", "c"});
    rng gen(53);
    for (int i = 0; i < 500; ++i) {
        const double a = static_cast<double>(gen.uniform_int(-20, 20));
        const double b = static_cast<double>(gen.uniform_int(-20, 20));
        const double c = static_cast<double>(gen.uniform_int(-20, 20));
        const double z = 3.0 * a - 2.0 * b + c + gen.normal(0, 4.0);
        d.add_row(std::array{a, b, c}, z > 0 ? 1 : 0);
    }
    random_forest forest;
    forest_params p;
    p.tree_count = 11;
    forest.fit(d, p, 17);
    const flat_forest flat(forest);
    EXPECT_TRUE(flat.thresholds_quantized());

    // Continuous training data should NOT quantize (midpoints of random
    // doubles virtually never round-trip float).
    const flat_forest continuous(trained_forest(5));
    EXPECT_FALSE(continuous.thresholds_quantized());

    namespace simd = richnote::ml::simd;
    const dataset probe = logistic_data(600, 59);
    const std::span<const double> matrix{probe.row(0).data(),
                                         probe.size() * probe.feature_count()};
    std::vector<double> scalar_out(probe.size());
    {
        simd::scoped_isa_override force(simd::isa::scalar);
        flat.predict_proba(matrix, probe.size(), scalar_out);
    }
    std::vector<double> dispatched_out(probe.size());
    flat.predict_proba(matrix, probe.size(), dispatched_out);
    for (std::size_t r = 0; r < probe.size(); ++r) {
        ASSERT_EQ(dispatched_out[r], scalar_out[r]) << "row " << r;
        ASSERT_EQ(scalar_out[r], forest.predict_proba(probe.row(r))) << "row " << r;
    }
}

TEST(flat_forest, threaded_batch_is_bit_identical_for_any_thread_count) {
    const flat_forest flat(trained_forest());
    const dataset probe = logistic_data(700, 43);
    const std::span<const double> matrix{probe.row(0).data(),
                                         probe.size() * probe.feature_count()};
    std::vector<double> sequential(probe.size());
    flat.predict_proba(matrix, probe.size(), sequential, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{16},
                                      std::size_t{0} /* hardware_concurrency */}) {
        std::vector<double> out(probe.size());
        flat.predict_proba(matrix, probe.size(), out, threads);
        for (std::size_t r = 0; r < probe.size(); ++r)
            ASSERT_EQ(out[r], sequential[r]) << "threads=" << threads << " row=" << r;
    }
}

TEST(random_forest, parallel_fit_is_bit_identical_for_any_thread_count) {
    const dataset train = logistic_data(400, 13);
    const dataset probe = logistic_data(200, 17);
    forest_params p;
    p.tree_count = 9;
    p.compute_oob = true;

    random_forest sequential;
    p.fit_threads = 1;
    sequential.fit(train, p, 3);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{16},
                                      std::size_t{0} /* hardware_concurrency */}) {
        random_forest parallel;
        p.fit_threads = threads;
        parallel.fit(train, p, 3);
        ASSERT_EQ(parallel.tree_count(), sequential.tree_count());
        ASSERT_TRUE(parallel.oob_accuracy().has_value());
        EXPECT_EQ(*parallel.oob_accuracy(), *sequential.oob_accuracy())
            << "threads=" << threads;
        for (std::size_t r = 0; r < probe.size(); ++r)
            ASSERT_EQ(parallel.predict_proba(probe.row(r)),
                      sequential.predict_proba(probe.row(r)))
                << "threads=" << threads << " row=" << r;
    }
}

TEST(random_forest, parallel_fit_with_more_threads_than_trees) {
    const dataset train = logistic_data(200, 19);
    forest_params p;
    p.tree_count = 3;
    p.fit_threads = 8;
    random_forest forest;
    forest.fit(train, p, 5);
    EXPECT_EQ(forest.tree_count(), 3u);

    p.fit_threads = 1;
    random_forest reference;
    reference.fit(train, p, 5);
    const dataset probe = logistic_data(50, 23);
    for (std::size_t r = 0; r < probe.size(); ++r)
        EXPECT_EQ(forest.predict_proba(probe.row(r)),
                  reference.predict_proba(probe.row(r)));
}

} // namespace

#include "ml/calibration.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/random_forest.hpp"

namespace {

using richnote::rng;
using richnote::ml::brier_score;
using richnote::ml::expected_calibration_error;
using richnote::ml::log_loss;
using richnote::ml::platt_calibrator;
using richnote::ml::reliability_diagram;

/// Scores whose true positive-rate is sigmoid(2*s - 1): a known
/// mis-calibration the fitter must invert.
void make_miscalibrated(int n, std::uint64_t seed, std::vector<double>& scores,
                        std::vector<int>& labels) {
    rng gen(seed);
    for (int i = 0; i < n; ++i) {
        const double s = gen.uniform();
        const double p_true = 1.0 / (1.0 + std::exp(-(2.0 * s - 1.0)));
        scores.push_back(s);
        labels.push_back(gen.bernoulli(p_true) ? 1 : 0);
    }
}

TEST(platt, recovers_the_latent_link_function) {
    std::vector<double> scores;
    std::vector<int> labels;
    make_miscalibrated(20000, 3, scores, labels);
    platt_calibrator cal;
    cal.fit(scores, labels);
    EXPECT_NEAR(cal.slope(), 2.0, 0.15);
    EXPECT_NEAR(cal.intercept(), -1.0, 0.1);
    EXPECT_NEAR(cal.calibrate(0.5), 0.5, 0.02);
}

TEST(platt, calibration_reduces_brier_and_log_loss) {
    std::vector<double> scores;
    std::vector<int> labels;
    make_miscalibrated(20000, 5, scores, labels);
    platt_calibrator cal;
    cal.fit(scores, labels);
    std::vector<double> calibrated;
    calibrated.reserve(scores.size());
    for (double s : scores) calibrated.push_back(cal.calibrate(s));
    EXPECT_LT(brier_score(calibrated, labels), brier_score(scores, labels));
    EXPECT_LT(log_loss(calibrated, labels), log_loss(scores, labels));
    EXPECT_LT(expected_calibration_error(calibrated, labels),
              expected_calibration_error(scores, labels));
}

TEST(platt, is_monotone_in_the_score) {
    std::vector<double> scores;
    std::vector<int> labels;
    make_miscalibrated(2000, 7, scores, labels);
    platt_calibrator cal;
    cal.fit(scores, labels);
    double previous = -1.0;
    for (double s = 0.0; s <= 1.0; s += 0.05) {
        const double p = cal.calibrate(s);
        EXPECT_GT(p, previous);
        previous = p;
    }
}

TEST(platt, rejects_degenerate_input) {
    platt_calibrator cal;
    EXPECT_THROW(cal.fit({}, {}), richnote::precondition_error);
    EXPECT_THROW(cal.fit({0.5, 0.6}, {1, 1}), richnote::precondition_error); // one class
    EXPECT_THROW(cal.fit({0.5}, {2}), richnote::precondition_error);
    EXPECT_THROW(cal.calibrate(0.5), richnote::precondition_error); // unfitted
}

TEST(metrics_calibration, brier_known_values) {
    EXPECT_DOUBLE_EQ(brier_score({1.0, 0.0}, {1, 0}), 0.0);
    EXPECT_DOUBLE_EQ(brier_score({0.5, 0.5}, {1, 0}), 0.25);
    EXPECT_DOUBLE_EQ(brier_score({0.0}, {1}), 1.0);
}

TEST(metrics_calibration, log_loss_is_clamped_and_ordered) {
    // Perfect predictions: ~0; confident wrong predictions: large but finite.
    EXPECT_NEAR(log_loss({1.0, 0.0}, {1, 0}), 0.0, 1e-9);
    const double wrong = log_loss({0.0}, {1});
    EXPECT_GT(wrong, 10.0);
    EXPECT_TRUE(std::isfinite(wrong));
    EXPECT_LT(log_loss({0.9}, {1}), log_loss({0.6}, {1}));
}

TEST(metrics_calibration, reliability_diagram_bins_correctly) {
    // 100 samples at p=0.25 with 25% positives: one bin, well calibrated.
    std::vector<double> probs(100, 0.25);
    std::vector<int> labels(100, 0);
    for (int i = 0; i < 25; ++i) labels[static_cast<std::size_t>(i)] = 1;
    const auto diagram = reliability_diagram(probs, labels, 10);
    ASSERT_EQ(diagram.size(), 1u);
    EXPECT_DOUBLE_EQ(diagram[0].mean_predicted, 0.25);
    EXPECT_DOUBLE_EQ(diagram[0].empirical_rate, 0.25);
    EXPECT_EQ(diagram[0].count, 100u);
    EXPECT_NEAR(expected_calibration_error(probs, labels), 0.0, 1e-12);
}

TEST(metrics_calibration, probability_one_lands_in_last_bin) {
    const auto diagram = reliability_diagram({1.0}, {1}, 10);
    ASSERT_EQ(diagram.size(), 1u);
    EXPECT_EQ(diagram[0].count, 1u);
}

TEST(metrics_calibration, rejects_out_of_range_probabilities) {
    EXPECT_THROW(reliability_diagram({1.5}, {1}), richnote::precondition_error);
}

using richnote::ml::isotonic_calibrator;

TEST(isotonic, fits_a_monotone_map_through_noisy_data) {
    std::vector<double> scores;
    std::vector<int> labels;
    make_miscalibrated(20000, 21, scores, labels);
    isotonic_calibrator cal;
    cal.fit(scores, labels);
    ASSERT_TRUE(cal.fitted());
    // Monotone by construction.
    double previous = -1.0;
    for (double s2 = 0.0; s2 <= 1.0; s2 += 0.02) {
        const double p = cal.calibrate(s2);
        EXPECT_GE(p, previous - 1e-12);
        previous = p;
    }
    // Recovers the latent link near the middle.
    EXPECT_NEAR(cal.calibrate(0.5), 0.5, 0.05);
}

TEST(isotonic, reduces_calibration_error_like_platt) {
    std::vector<double> scores;
    std::vector<int> labels;
    make_miscalibrated(20000, 23, scores, labels);
    isotonic_calibrator cal;
    cal.fit(scores, labels);
    std::vector<double> calibrated;
    for (double s2 : scores) calibrated.push_back(cal.calibrate(s2));
    EXPECT_LT(brier_score(calibrated, labels), brier_score(scores, labels));
    EXPECT_LT(expected_calibration_error(calibrated, labels),
              expected_calibration_error(scores, labels));
}

TEST(isotonic, perfectly_separated_data_pools_to_a_step) {
    // Scores < 0.5 all negative, >= 0.5 all positive: two pools.
    std::vector<double> scores;
    std::vector<int> labels;
    for (int i = 0; i < 50; ++i) {
        scores.push_back(0.1 + 0.001 * i);
        labels.push_back(0);
        scores.push_back(0.7 + 0.001 * i);
        labels.push_back(1);
    }
    isotonic_calibrator cal;
    cal.fit(scores, labels);
    EXPECT_DOUBLE_EQ(cal.calibrate(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cal.calibrate(1.0), 1.0);
    EXPECT_LE(cal.knot_count(), 2u);
}

TEST(isotonic, constant_labels_fit_a_flat_function) {
    isotonic_calibrator cal;
    cal.fit({0.1, 0.5, 0.9}, {1, 1, 1});
    EXPECT_DOUBLE_EQ(cal.calibrate(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cal.calibrate(0.5), 1.0);
}

TEST(isotonic, clamps_outside_the_fitted_range) {
    isotonic_calibrator cal;
    cal.fit({0.3, 0.4, 0.6, 0.7}, {0, 0, 1, 1});
    EXPECT_DOUBLE_EQ(cal.calibrate(-5.0), cal.calibrate(0.3));
    EXPECT_DOUBLE_EQ(cal.calibrate(5.0), cal.calibrate(0.7));
}

TEST(isotonic, rejects_degenerate_input) {
    isotonic_calibrator cal;
    EXPECT_THROW(cal.fit({}, {}), richnote::precondition_error);
    EXPECT_THROW(cal.calibrate(0.5), richnote::precondition_error);
    EXPECT_THROW(cal.fit({0.5}, {2}), richnote::precondition_error);
}

/// End-to-end: calibrating a forest's vote fractions on held-out data
/// improves (or at least does not worsen) the Brier score on fresh data.
TEST(platt, improves_forest_calibration_end_to_end) {
    rng gen(11);
    auto make_split = [&](int n, richnote::ml::dataset& d) {
        for (int i = 0; i < n; ++i) {
            const std::array<double, 2> row = {gen.uniform(-1, 1), gen.uniform(-1, 1)};
            const double z = 1.5 * row[0] - row[1] + gen.normal(0, 1.0);
            d.add_row(row, z > 0 ? 1 : 0);
        }
    };
    richnote::ml::dataset train({"a", "b"});
    richnote::ml::dataset held_out({"a", "b"});
    richnote::ml::dataset test({"a", "b"});
    make_split(3000, train);
    make_split(1500, held_out);
    make_split(1500, test);

    richnote::ml::random_forest forest;
    richnote::ml::forest_params params;
    params.tree_count = 20;
    forest.fit(train, params, 3);

    auto scores_of = [&](const richnote::ml::dataset& d, std::vector<double>& scores,
                         std::vector<int>& labels) {
        for (std::size_t r = 0; r < d.size(); ++r) {
            scores.push_back(forest.predict_proba(d.row(r)));
            labels.push_back(d.label(r));
        }
    };
    std::vector<double> cal_scores, test_scores;
    std::vector<int> cal_labels, test_labels;
    scores_of(held_out, cal_scores, cal_labels);
    scores_of(test, test_scores, test_labels);

    platt_calibrator cal;
    cal.fit(cal_scores, cal_labels);
    std::vector<double> calibrated;
    for (double s : test_scores) calibrated.push_back(cal.calibrate(s));

    EXPECT_LE(brier_score(calibrated, test_labels),
              brier_score(test_scores, test_labels) + 0.005);
}

} // namespace

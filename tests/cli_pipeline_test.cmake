# Drives generate -> train -> simulate -> sweep through the CLI and fails on
# any non-zero exit.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run_step)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()
run_step(${RICHNOTE} generate users=30 seed=2 out=trace.csv)
run_step(${RICHNOTE} train trace=trace.csv users=30 trees=8 out=model.forest)
run_step(${RICHNOTE} simulate users=30 seed=2 model=model.forest budget_mb=5 trees=8)
run_step(${RICHNOTE} simulate users=30 seed=2 scheduler=direct budget_mb=5 trees=8)
run_step(${RICHNOTE} sweep users=30 seed=2 budgets=2,10 trees=8)

# Telemetry surface: trace + profiler exports from two same-seed runs, then
# trace-report over each. Reports (and the traces they summarize) must be
# byte-identical — the whole analysis pipeline is deterministic.
foreach(run a b)
  run_step(${RICHNOTE} simulate users=30 seed=2 budget_mb=5 trees=8
           trace=run_${run}.ndjson profile=on
           profile_trace=chrome_${run}.json profile_flame=flame_${run}.txt)
  run_step(${RICHNOTE} trace-report trace=run_${run}.ndjson)
  execute_process(COMMAND ${RICHNOTE} trace-report trace=run_${run}.ndjson
                  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE code
                  OUTPUT_FILE ${WORK_DIR}/report_${run}.txt ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "trace-report failed (${code}): ${err}")
  endif()
endforeach()
foreach(artifact run_a.ndjson|run_b.ndjson report_a.txt|report_b.txt)
  string(REPLACE "|" ";" pair ${artifact})
  list(GET pair 0 left)
  list(GET pair 1 right)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/${left} ${WORK_DIR}/${right}
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "same-seed artifacts differ: ${left} vs ${right}")
  endif()
endforeach()

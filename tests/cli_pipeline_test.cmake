# Drives generate -> train -> simulate -> sweep -> evaluate through the CLI
# and fails on any non-zero exit.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run_step)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

# Error contract: bad invocations must exit non-zero with a named `error:`
# diagnostic on stderr, never a silent success or a bare crash.
function(run_step_expect_error)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "expected failure but step succeeded: ${ARGN}\n${out}")
  endif()
  if(NOT err MATCHES "error:")
    message(FATAL_ERROR "expected a named error: diagnostic from: ${ARGN}\n${err}")
  endif()
endfunction()
run_step(${RICHNOTE} generate users=30 seed=2 out=trace.csv)
run_step(${RICHNOTE} train trace=trace.csv users=30 trees=8 out=model.forest)
run_step(${RICHNOTE} simulate users=30 seed=2 model=model.forest budget_mb=5 trees=8)
run_step(${RICHNOTE} simulate users=30 seed=2 scheduler=direct budget_mb=5 trees=8)
run_step(${RICHNOTE} sweep users=30 seed=2 budgets=2,10 trees=8)

# Telemetry surface: trace + profiler exports from two same-seed runs, then
# trace-report over each. Reports (and the traces they summarize) must be
# byte-identical — the whole analysis pipeline is deterministic.
foreach(run a b)
  run_step(${RICHNOTE} simulate users=30 seed=2 budget_mb=5 trees=8
           trace=run_${run}.ndjson profile=on
           profile_trace=chrome_${run}.json profile_flame=flame_${run}.txt)
  run_step(${RICHNOTE} trace-report trace=run_${run}.ndjson)
  execute_process(COMMAND ${RICHNOTE} trace-report trace=run_${run}.ndjson
                  WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE code
                  OUTPUT_FILE ${WORK_DIR}/report_${run}.txt ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "trace-report failed (${code}): ${err}")
  endif()
endforeach()
foreach(artifact run_a.ndjson|run_b.ndjson report_a.txt|report_b.txt)
  string(REPLACE "|" ";" pair ${artifact})
  list(GET pair 0 left)
  list(GET pair 1 right)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/${left} ${WORK_DIR}/${right}
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "same-seed artifacts differ: ${left} vs ${right}")
  endif()
endforeach()

# Monte-Carlo evaluation: the JSON/CSV reports are byte-identical for any
# worker count and across reruns (the evaluator's determinism contract).
foreach(threads 1 2 8)
  run_step(${RICHNOTE} evaluate scenario=flash_crowd users=12 trees=4 seeds=6
           min_samples=3 threads=${threads}
           json=eval_t${threads}.json csv=eval_t${threads}.csv)
endforeach()
run_step(${RICHNOTE} evaluate scenario=flash_crowd users=12 trees=4 seeds=6
         min_samples=3 threads=2 json=eval_rerun.json csv=eval_rerun.csv)
foreach(artifact eval_t1.json|eval_t2.json eval_t1.json|eval_t8.json
                 eval_t1.csv|eval_t8.csv eval_t2.json|eval_rerun.json
                 eval_t2.csv|eval_rerun.csv)
  string(REPLACE "|" ";" pair ${artifact})
  list(GET pair 0 left)
  list(GET pair 1 right)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/${left} ${WORK_DIR}/${right}
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "evaluate artifacts differ: ${left} vs ${right}")
  endif()
endforeach()

# Error contract: unknown subcommands, keys, scenarios, arms, metrics and
# malformed list values all produce a named error and a non-zero exit.
run_step_expect_error(${RICHNOTE} frobnicate)
run_step_expect_error(${RICHNOTE} simulate users=30 bogus_key=1)
run_step_expect_error(${RICHNOTE} sweep users=30 trees=8 budgets=5x)
run_step_expect_error(${RICHNOTE} evaluate scenario=warp_core_breach)
run_step_expect_error(${RICHNOTE} evaluate users=12 trees=4 objective=not_a_metric)
run_step_expect_error(${RICHNOTE} evaluate users=12 trees=4 arms=richnote,nonexistent)
run_step_expect_error(${RICHNOTE} evaluate users=12 trees=4 seeds=0)

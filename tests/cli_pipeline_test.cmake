# Drives generate -> train -> simulate -> sweep through the CLI and fails on
# any non-zero exit.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run_step)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()
run_step(${RICHNOTE} generate users=30 seed=2 out=trace.csv)
run_step(${RICHNOTE} train trace=trace.csv users=30 trees=8 out=model.forest)
run_step(${RICHNOTE} simulate users=30 seed=2 model=model.forest budget_mb=5 trees=8)
run_step(${RICHNOTE} simulate users=30 seed=2 scheduler=direct budget_mb=5 trees=8)
run_step(${RICHNOTE} sweep users=30 seed=2 budgets=2,10 trees=8)

#include "energy/model.hpp"

#include <gtest/gtest.h>

namespace {

using richnote::energy::default_profile;
using richnote::energy::energy_model;
using richnote::energy::radio_profile;
using richnote::sim::net_state;

TEST(energy_profiles, imc09_structure) {
    const auto cell = default_profile(net_state::cell);
    EXPECT_GT(cell.ramp_joules, 0.0);
    EXPECT_GT(cell.joules_per_kb, 0.0);
    EXPECT_GT(cell.tail_joules, 0.0);
    EXPECT_GT(cell.tail_window_sec, 0.0);

    const auto wifi = default_profile(net_state::wifi);
    // WiFi: cheaper per byte, negligible tail compared to 3G.
    EXPECT_LT(wifi.joules_per_kb, cell.joules_per_kb);
    EXPECT_LT(wifi.tail_joules, cell.tail_joules);

    const auto off = default_profile(net_state::off);
    EXPECT_DOUBLE_EQ(off.ramp_joules, 0.0);
    EXPECT_DOUBLE_EQ(off.joules_per_kb, 0.0);
}

TEST(energy_model, isolated_transfer_decomposes) {
    const energy_model model;
    const auto p = default_profile(net_state::cell);
    const double bytes = 1024.0 * 100.0; // 100 KB
    EXPECT_DOUBLE_EQ(model.isolated_transfer_joules(net_state::cell, bytes),
                     p.ramp_joules + 100.0 * p.joules_per_kb + p.tail_joules);
}

TEST(energy_model, off_and_empty_transfers_are_free) {
    const energy_model model;
    EXPECT_DOUBLE_EQ(model.isolated_transfer_joules(net_state::off, 1e6), 0.0);
    EXPECT_DOUBLE_EQ(model.isolated_transfer_joules(net_state::cell, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(model.session_joules(net_state::cell, 1e6, 0), 0.0);
    EXPECT_DOUBLE_EQ(model.estimate_rho(net_state::off, 1e6), 0.0);
}

TEST(energy_model, batching_amortizes_ramp_and_tail) {
    // The point of back-to-back delivery: N items in one session cost one
    // ramp + one tail, strictly less than N isolated transfers.
    const energy_model model;
    const double item_bytes = 200'000.0;
    const double batched = model.session_joules(net_state::cell, 5 * item_bytes, 5);
    const double isolated =
        5.0 * model.isolated_transfer_joules(net_state::cell, item_bytes);
    EXPECT_LT(batched, isolated);
    // The per-byte part is identical; the saving is exactly 4 ramps+tails.
    const auto p = default_profile(net_state::cell);
    EXPECT_NEAR(isolated - batched, 4.0 * (p.ramp_joules + p.tail_joules), 1e-9);
}

TEST(energy_model, rho_estimate_is_marginal_plus_amortized_overhead) {
    const energy_model model;
    const auto p = default_profile(net_state::cell);
    const double bytes = 102'400.0; // 100 KB
    const double rho = model.estimate_rho(net_state::cell, bytes, 8.0);
    EXPECT_DOUBLE_EQ(rho, (p.ramp_joules + p.tail_joules) / 8.0 + 100.0 * p.joules_per_kb);
    // Larger expected batches shrink the overhead share.
    EXPECT_LT(model.estimate_rho(net_state::cell, bytes, 100.0), rho);
}

TEST(energy_model, rho_is_monotone_in_bytes) {
    const energy_model model;
    double previous = 0.0;
    for (double kb = 1; kb <= 1024; kb *= 2) {
        const double rho = model.estimate_rho(net_state::cell, kb * 1024.0);
        EXPECT_GT(rho, previous);
        previous = rho;
    }
}

TEST(energy_model, wifi_transfers_are_cheaper_at_scale) {
    const energy_model model;
    const double mb = 1024.0 * 1024.0;
    EXPECT_LT(model.session_joules(net_state::wifi, 10 * mb, 10),
              model.session_joules(net_state::cell, 10 * mb, 10));
}

TEST(energy_model, custom_profiles_are_honoured) {
    radio_profile cheap_cell{1.0, 0.001, 2.0, 5.0};
    radio_profile fast_wifi{0.5, 0.0001, 0.1, 0.5};
    const energy_model model(cheap_cell, fast_wifi);
    EXPECT_DOUBLE_EQ(model.profile(net_state::cell).ramp_joules, 1.0);
    EXPECT_DOUBLE_EQ(model.profile(net_state::wifi).joules_per_kb, 0.0001);
    EXPECT_DOUBLE_EQ(model.isolated_transfer_joules(net_state::cell, 1024.0),
                     1.0 + 0.001 + 2.0);
}

/// Parameterized consistency sweep: for any byte size and batch size, the
/// session cost must lie between the pure per-byte cost and the sum of
/// isolated transfers.
class energy_bounds
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(energy_bounds, session_cost_is_bracketed) {
    const auto [item_bytes, batch] = GetParam();
    const energy_model model;
    for (net_state state : {net_state::cell, net_state::wifi}) {
        const double total_bytes = item_bytes * static_cast<double>(batch);
        const double session = model.session_joules(state, total_bytes, batch);
        const double per_byte_only =
            default_profile(state).joules_per_kb * total_bytes / 1024.0;
        const double isolated_sum =
            static_cast<double>(batch) * model.isolated_transfer_joules(state, item_bytes);
        EXPECT_GE(session, per_byte_only);
        EXPECT_LE(session, isolated_sum + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    sizes_and_batches, energy_bounds,
    ::testing::Combine(::testing::Values(200.0, 20'000.0, 200'000.0, 2'000'000.0),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{32})));

} // namespace

#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace {

using richnote::faults::fault_plan;
using richnote::faults::fault_plan_params;

fault_plan_params chaos_params(std::uint64_t seed = 7) {
    fault_plan_params p;
    p.seed = seed;
    p.blackout_prob = 0.05;
    p.partial_transfer_prob = 0.2;
    p.min_transfer_fraction = 0.25;
    p.duplicate_prob = 0.1;
    p.reorder_prob = 0.1;
    p.brownout_prob = 0.05;
    p.crash_restart_prob = 0.05;
    return p;
}

TEST(fault_plan, default_plan_is_inert) {
    const fault_plan plan;
    EXPECT_FALSE(plan.enabled());
    for (std::uint64_t r = 0; r < 200; ++r) {
        EXPECT_FALSE(plan.blackout(0, r));
        EXPECT_FALSE(plan.brownout(1, r));
        EXPECT_FALSE(plan.reorder_arrivals(2, r));
        EXPECT_FALSE(plan.crash_restart(3, r));
        EXPECT_DOUBLE_EQ(plan.transfer_fraction(0, r, r), 1.0);
        EXPECT_FALSE(plan.duplicate_arrival(0, r));
    }
}

TEST(fault_plan, queries_are_pure_functions_of_the_seed) {
    const fault_plan a(chaos_params());
    const fault_plan b(chaos_params());
    ASSERT_TRUE(a.enabled());
    // Same (seed, user, round, item) => same answer, no matter how many
    // times, in which order, or from which plan instance the query is made.
    for (std::uint32_t user = 0; user < 8; ++user) {
        for (std::uint64_t round = 0; round < 300; ++round) {
            EXPECT_EQ(a.blackout(user, round), b.blackout(user, round));
            EXPECT_EQ(a.brownout(user, round), b.brownout(user, round));
            EXPECT_EQ(a.crash_restart(user, round), b.crash_restart(user, round));
            EXPECT_EQ(a.reorder_arrivals(user, round), b.reorder_arrivals(user, round));
            EXPECT_EQ(a.reorder_seed(user, round), b.reorder_seed(user, round));
            EXPECT_DOUBLE_EQ(a.transfer_fraction(user, round, 17),
                             b.transfer_fraction(user, round, 17));
        }
    }
    // Re-asking does not advance any hidden state.
    EXPECT_EQ(a.blackout(3, 42), a.blackout(3, 42));
}

TEST(fault_plan, different_seeds_give_different_schedules) {
    const fault_plan a(chaos_params(7));
    const fault_plan b(chaos_params(8));
    std::size_t differing = 0;
    for (std::uint64_t round = 0; round < 2000; ++round) {
        if (a.blackout(0, round) != b.blackout(0, round)) ++differing;
    }
    EXPECT_GT(differing, 0u);
}

TEST(fault_plan, blackout_windows_cover_consecutive_rounds) {
    // A window of length L covers round r iff a start fired in
    // (r-L+1 .. r], so the 1-round schedule is a subset of the 3-round
    // schedule for identical seed/probability, and every struck round under
    // L=3 has a struck round at most 2 rounds earlier that also starts a
    // run under L=1.
    fault_plan_params one = chaos_params();
    one.blackout_rounds = 1;
    fault_plan_params three = chaos_params();
    three.blackout_rounds = 3;
    const fault_plan short_plan(one);
    const fault_plan long_plan(three);

    std::size_t short_hits = 0;
    std::size_t long_hits = 0;
    for (std::uint64_t round = 0; round < 5000; ++round) {
        const bool s = short_plan.blackout(4, round);
        const bool l = long_plan.blackout(4, round);
        if (s) {
            ++short_hits;
            EXPECT_TRUE(l) << "window start at round " << round
                           << " must also be covered by the longer window";
            // The start of a run extends through the next two rounds.
            EXPECT_TRUE(long_plan.blackout(4, round + 1));
            EXPECT_TRUE(long_plan.blackout(4, round + 2));
        }
        if (l) ++long_hits;
    }
    EXPECT_GT(short_hits, 0u);
    EXPECT_GT(long_hits, short_hits);
    EXPECT_LE(long_hits, 3 * short_hits);
}

TEST(fault_plan, fire_rates_track_their_probabilities) {
    fault_plan_params p;
    p.seed = 11;
    p.partial_transfer_prob = 0.2;
    p.duplicate_prob = 0.05;
    const fault_plan plan(p);

    std::size_t cuts = 0;
    std::size_t dups = 0;
    const std::size_t trials = 20000;
    for (std::size_t i = 0; i < trials; ++i) {
        if (plan.transfer_fraction(0, i, i * 31 + 1) < 1.0) ++cuts;
        if (plan.duplicate_arrival(0, i)) ++dups;
    }
    EXPECT_NEAR(static_cast<double>(cuts) / trials, 0.2, 0.02);
    EXPECT_NEAR(static_cast<double>(dups) / trials, 0.05, 0.01);
}

TEST(fault_plan, transfer_fractions_respect_the_floor) {
    fault_plan_params p;
    p.seed = 3;
    p.partial_transfer_prob = 1.0; // every transfer cuts
    p.min_transfer_fraction = 0.4;
    const fault_plan plan(p);
    double lo = 1.0;
    double hi = 0.0;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const double f = plan.transfer_fraction(2, i, i);
        EXPECT_GE(f, 0.4);
        EXPECT_LT(f, 1.0);
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    // The draw actually spans the allowed interval.
    EXPECT_LT(lo, 0.45);
    EXPECT_GT(hi, 0.95);
}

TEST(fault_plan, scaled_plan_interpolates_to_inert) {
    const fault_plan_params base = chaos_params();
    EXPECT_FALSE(base.scaled(0.0).any());
    const fault_plan_params half = base.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.partial_transfer_prob, 0.1);
    EXPECT_DOUBLE_EQ(half.blackout_prob, 0.025);
    EXPECT_EQ(half.blackout_rounds, base.blackout_rounds);
    EXPECT_EQ(half.seed, base.seed);
    // Scaling clamps instead of overflowing probability space.
    EXPECT_DOUBLE_EQ(base.scaled(100.0).partial_transfer_prob, 1.0);
}

TEST(fault_plan, reorder_seeds_differ_across_rounds_and_users) {
    const fault_plan plan(chaos_params());
    std::set<std::uint64_t> seeds;
    for (std::uint32_t user = 0; user < 10; ++user) {
        for (std::uint64_t round = 0; round < 50; ++round) {
            seeds.insert(plan.reorder_seed(user, round));
        }
    }
    EXPECT_EQ(seeds.size(), 500u);
}

TEST(fault_plan, invalid_probabilities_are_rejected) {
    fault_plan_params p;
    p.blackout_prob = 1.5;
    EXPECT_THROW(fault_plan{p}, richnote::precondition_error);
    fault_plan_params q;
    q.min_transfer_fraction = 1.0;
    EXPECT_THROW(fault_plan{q}, richnote::precondition_error);
}

} // namespace

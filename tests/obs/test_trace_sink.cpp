// trace_sink unit tests: event construction, field formatting, per-user
// bucketing and the deterministic (round, user, seq) merge order.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "obs/trace_sink.hpp"

namespace {

using richnote::obs::trace_sink;

TEST(trace_sink_suite, event_carries_common_fields_and_typed_values) {
    trace_sink sink(2);
    sink.event(1, 42, "decision")
        .field("item", std::uint64_t{7})
        .field("level", 3)
        .field("utility", 0.5)
        .field("metered", true)
        .field("network", "wifi");
    ASSERT_EQ(sink.event_count(), 1u);
    const auto& events = sink.events_of(1);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].round, 42u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].json,
              R"({"type":"decision","user":1,"round":42,"item":7,"level":3,)"
              R"("utility":0.5,"metered":true,"network":"wifi"})");
}

TEST(trace_sink_suite, event_without_fields_is_stored_too) {
    trace_sink sink(1);
    sink.event(0, 5, "crash_restart");
    ASSERT_EQ(sink.events_of(0).size(), 1u);
    EXPECT_EQ(sink.events_of(0)[0].json,
              R"({"type":"crash_restart","user":0,"round":5})");
}

TEST(trace_sink_suite, doubles_round_trip_and_strings_are_escaped) {
    trace_sink sink(1);
    const double v = 0.1 + 0.2; // not exactly 0.3
    sink.event(0, 0, "x").field("v", v).field("s", "a\"b\\c\n");
    const std::string& json = sink.events_of(0)[0].json;
    // %.17g round-trips the exact double.
    const auto pos = json.find("\"v\":");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_EQ(std::strtod(json.c_str() + pos + 4, nullptr), v);
    EXPECT_NE(json.find(R"("s":"a\"b\\c\n")"), std::string::npos) << json;
}

TEST(trace_sink_suite, merge_orders_by_round_then_user_then_sequence) {
    trace_sink sink(3);
    // Emit out of round order and across users, as sharded workers would.
    sink.event(2, 1, "b");
    sink.event(0, 0, "a");
    sink.event(2, 0, "c");
    sink.event(0, 0, "d"); // same (round, user) — sequence breaks the tie
    sink.event(1, 1, "e");

    std::ostringstream out;
    sink.write_ndjson(out);
    EXPECT_EQ(out.str(),
              R"({"type":"a","user":0,"round":0})"
              "\n"
              R"({"type":"d","user":0,"round":0})"
              "\n"
              R"({"type":"c","user":2,"round":0})"
              "\n"
              R"({"type":"e","user":1,"round":1})"
              "\n"
              R"({"type":"b","user":2,"round":1})"
              "\n");
}

TEST(trace_sink_suite, merged_stream_is_independent_of_emission_interleaving) {
    // Two interleavings of the same per-user event sets — as different
    // worker-thread schedules would produce — must serialize identically.
    trace_sink a(2);
    a.event(0, 0, "x").field("i", 1);
    a.event(1, 0, "y").field("i", 2);
    a.event(0, 1, "z").field("i", 3);

    trace_sink b(2);
    b.event(1, 0, "y").field("i", 2);
    b.event(0, 0, "x").field("i", 1);
    b.event(0, 1, "z").field("i", 3);

    std::ostringstream sa;
    std::ostringstream sb;
    a.write_ndjson(sa);
    b.write_ndjson(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(trace_sink_suite, out_of_range_user_throws) {
    trace_sink sink(2);
    EXPECT_THROW(sink.event(2, 0, "x"), std::exception);
    EXPECT_THROW(sink.events_of(5), std::exception);
}

} // namespace

// trace_sink unit tests: event construction, field formatting, per-user
// bucketing, the deterministic (round, user, seq) merge order, and the
// incremental file streaming that keeps a killed run's trace valid.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_sink.hpp"

namespace {

using richnote::obs::trace_sink;

TEST(trace_sink_suite, event_carries_common_fields_and_typed_values) {
    trace_sink sink(2);
    sink.event(1, 42, "decision")
        .field("item", std::uint64_t{7})
        .field("level", 3)
        .field("utility", 0.5)
        .field("metered", true)
        .field("network", "wifi");
    ASSERT_EQ(sink.event_count(), 1u);
    const auto& events = sink.events_of(1);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].round, 42u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].json,
              R"({"type":"decision","user":1,"round":42,"item":7,"level":3,)"
              R"("utility":0.5,"metered":true,"network":"wifi"})");
}

TEST(trace_sink_suite, event_without_fields_is_stored_too) {
    trace_sink sink(1);
    sink.event(0, 5, "crash_restart");
    ASSERT_EQ(sink.events_of(0).size(), 1u);
    EXPECT_EQ(sink.events_of(0)[0].json,
              R"({"type":"crash_restart","user":0,"round":5})");
}

TEST(trace_sink_suite, doubles_round_trip_and_strings_are_escaped) {
    trace_sink sink(1);
    const double v = 0.1 + 0.2; // not exactly 0.3
    sink.event(0, 0, "x").field("v", v).field("s", "a\"b\\c\n");
    const std::string& json = sink.events_of(0)[0].json;
    // %.17g round-trips the exact double.
    const auto pos = json.find("\"v\":");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_EQ(std::strtod(json.c_str() + pos + 4, nullptr), v);
    EXPECT_NE(json.find(R"("s":"a\"b\\c\n")"), std::string::npos) << json;
}

TEST(trace_sink_suite, merge_orders_by_round_then_user_then_sequence) {
    trace_sink sink(3);
    // Emit out of round order and across users, as sharded workers would.
    sink.event(2, 1, "b");
    sink.event(0, 0, "a");
    sink.event(2, 0, "c");
    sink.event(0, 0, "d"); // same (round, user) — sequence breaks the tie
    sink.event(1, 1, "e");

    std::ostringstream out;
    sink.write_ndjson(out);
    EXPECT_EQ(out.str(),
              R"({"type":"a","user":0,"round":0})"
              "\n"
              R"({"type":"d","user":0,"round":0})"
              "\n"
              R"({"type":"c","user":2,"round":0})"
              "\n"
              R"({"type":"e","user":1,"round":1})"
              "\n"
              R"({"type":"b","user":2,"round":1})"
              "\n");
}

TEST(trace_sink_suite, merged_stream_is_independent_of_emission_interleaving) {
    // Two interleavings of the same per-user event sets — as different
    // worker-thread schedules would produce — must serialize identically.
    trace_sink a(2);
    a.event(0, 0, "x").field("i", 1);
    a.event(1, 0, "y").field("i", 2);
    a.event(0, 1, "z").field("i", 3);

    trace_sink b(2);
    b.event(1, 0, "y").field("i", 2);
    b.event(0, 0, "x").field("i", 1);
    b.event(0, 1, "z").field("i", 3);

    std::ostringstream sa;
    std::ostringstream sb;
    a.write_ndjson(sa);
    b.write_ndjson(sb);
    EXPECT_EQ(sa.str(), sb.str());
}

TEST(trace_sink_suite, out_of_range_user_throws) {
    trace_sink sink(2);
    EXPECT_THROW(sink.event(2, 0, "x"), std::exception);
    EXPECT_THROW(sink.events_of(5), std::exception);
}

// ---- incremental streaming + crash durability (DESIGN.md §10) ----

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string temp_path(const char* tag) {
    return testing::TempDir() + "trace_sink_" + tag + "_" +
           std::to_string(::getpid()) + ".ndjson";
}

/// Emits the same little multi-user run into any sink.
void emit_three_rounds(trace_sink& sink) {
    sink.event(1, 0, "a").field("i", 1);
    sink.event(0, 0, "b").field("i", 2);
    sink.event(0, 1, "c").field("i", 3);
    sink.event(2, 1, "d").field("i", 4);
    sink.event(1, 2, "e").field("i", 5);
}

TEST(trace_sink_suite, streamed_file_matches_write_ndjson_byte_for_byte) {
    trace_sink reference(3);
    emit_three_rounds(reference);
    std::ostringstream expected;
    reference.write_ndjson(expected);

    const std::string path = temp_path("stream");
    {
        trace_sink sink(3);
        EXPECT_FALSE(sink.streaming());
        sink.attach_file(path);
        EXPECT_TRUE(sink.streaming());
        // Interleave emission with per-round flushes like the driver does.
        sink.event(1, 0, "a").field("i", 1);
        sink.event(0, 0, "b").field("i", 2);
        sink.flush_through(0);
        sink.event(0, 1, "c").field("i", 3);
        sink.event(2, 1, "d").field("i", 4);
        sink.flush_through(1);
        sink.event(1, 2, "e").field("i", 5);
        sink.finalize();
        EXPECT_FALSE(sink.streaming());
    }
    EXPECT_EQ(slurp(path), expected.str());
    std::remove(path.c_str());
}

TEST(trace_sink_suite, destructor_finalizes_an_attached_file) {
    const std::string path = temp_path("dtor");
    {
        trace_sink sink(3);
        sink.attach_file(path);
        emit_three_rounds(sink);
        // No explicit finalize: the destructor must flush everything.
    }
    trace_sink reference(3);
    emit_three_rounds(reference);
    std::ostringstream expected;
    reference.write_ndjson(expected);
    EXPECT_EQ(slurp(path), expected.str());
    std::remove(path.c_str());
}

TEST(trace_sink_suite, double_attach_throws_and_finalize_is_idempotent) {
    const std::string path = temp_path("attach");
    trace_sink sink(1);
    sink.attach_file(path);
    EXPECT_THROW(sink.attach_file(path), std::exception);
    sink.finalize();
    sink.finalize(); // second call is a no-op
    EXPECT_THROW(sink.attach_file("/nonexistent-dir/x.ndjson"), std::exception);
    std::remove(path.c_str());
}

TEST(trace_sink_suite, killed_writer_leaves_a_valid_flushed_prefix) {
    // A child process streams two rounds, flushes them, buffers a third
    // round WITHOUT flushing, then dies hard (SIGKILL — no destructors, no
    // atexit). The file must hold exactly the flushed prefix, every line a
    // complete JSON object.
    const std::string path = temp_path("killed");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        trace_sink sink(2);
        sink.attach_file(path);
        sink.event(0, 0, "a").field("i", 1);
        sink.event(1, 0, "b").field("i", 2);
        sink.flush_through(0);
        sink.event(0, 1, "c").field("i", 3);
        sink.flush_through(1);
        sink.event(1, 2, "d").field("i", 4); // buffered, never flushed
        ::kill(::getpid(), SIGKILL);
        ::_exit(127); // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    EXPECT_EQ(slurp(path),
              R"({"type":"a","user":0,"round":0,"i":1})"
              "\n"
              R"({"type":"b","user":1,"round":0,"i":2})"
              "\n"
              R"({"type":"c","user":0,"round":1,"i":3})"
              "\n");
    std::remove(path.c_str());
}

TEST(trace_sink_suite, atexit_guard_flushes_on_plain_exit) {
    // A child that calls exit() mid-run (no finalize, no destructor — the
    // sink is leaked on purpose) still gets its buffered events flushed by
    // the atexit guard.
    const std::string path = temp_path("atexit");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        auto* sink = new trace_sink(2); // leaked: only atexit can flush it
        sink->attach_file(path);
        sink->event(0, 0, "a").field("i", 1);
        sink->event(1, 1, "b").field("i", 2);
        std::exit(0);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    EXPECT_EQ(slurp(path),
              R"({"type":"a","user":0,"round":0,"i":1})"
              "\n"
              R"({"type":"b","user":1,"round":1,"i":2})"
              "\n");
    std::remove(path.c_str());
}

} // namespace

// Runtime sampling profiler tests: idle scopes record nothing, enabled
// scopes count every call and sample timings, totals are estimated from
// the sample, spans drain from the per-thread rings, and thread lanes are
// pooled so respawned worker threads do not grow the profiler.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/profile.hpp"

namespace {

using richnote::obs::profile_config;
using richnote::obs::profile_slot;
using richnote::obs::span_record;

/// Every test starts from a clean, disabled profiler.
class profile_suite : public testing::Test {
protected:
    void SetUp() override {
        richnote::obs::profile_set_enabled(false);
        richnote::obs::profile_configure(profile_config{});
        richnote::obs::profile_reset();
    }
    void TearDown() override {
        richnote::obs::profile_set_enabled(false);
        richnote::obs::profile_configure(profile_config{});
        richnote::obs::profile_reset();
    }
};

TEST_F(profile_suite, idle_scopes_record_nothing) {
    EXPECT_FALSE(richnote::obs::profile_enabled());
    for (int i = 0; i < 100; ++i) {
        RICHNOTE_PROFILE_SCOPE(profile_slot::broker_round);
    }
    const auto totals = richnote::obs::profile_read(profile_slot::broker_round);
    EXPECT_EQ(totals.calls, 0u);
    EXPECT_EQ(totals.sampled_calls, 0u);
    std::vector<span_record> spans;
    EXPECT_EQ(richnote::obs::profile_drain(spans), 0u);
}

TEST_F(profile_suite, sample_every_one_times_every_call) {
    profile_config cfg;
    cfg.sample_every = 1;
    richnote::obs::profile_configure(cfg);
    richnote::obs::profile_set_enabled(true);
    for (int i = 0; i < 10; ++i) {
        RICHNOTE_PROFILE_SCOPE(profile_slot::mckp_solve);
    }
    richnote::obs::profile_set_enabled(false);

    const auto totals = richnote::obs::profile_read(profile_slot::mckp_solve);
    EXPECT_EQ(totals.calls, 10u);
    EXPECT_EQ(totals.sampled_calls, 10u);
    EXPECT_EQ(totals.nanos, totals.sampled_nanos);

    std::vector<span_record> spans;
    EXPECT_EQ(richnote::obs::profile_drain(spans), 10u);
    for (const span_record& s : spans) {
        EXPECT_EQ(s.slot, profile_slot::mckp_solve);
        EXPECT_GE(s.end_ns, s.start_ns);
    }
    // The rings are drained: a second drain finds nothing.
    EXPECT_EQ(richnote::obs::profile_drain(spans), 0u);
}

TEST_F(profile_suite, sampling_counts_all_calls_and_scales_the_estimate) {
    profile_config cfg;
    cfg.sample_every = 4;
    richnote::obs::profile_configure(cfg);
    richnote::obs::profile_set_enabled(true);
    for (int i = 0; i < 100; ++i) {
        RICHNOTE_PROFILE_SCOPE(profile_slot::forest_predict);
    }
    richnote::obs::profile_set_enabled(false);

    const auto totals = richnote::obs::profile_read(profile_slot::forest_predict);
    EXPECT_EQ(totals.calls, 100u);
    EXPECT_EQ(totals.sampled_calls, 25u);
    // nanos = sampled_nanos * calls / sampled_calls.
    EXPECT_EQ(totals.nanos, totals.sampled_nanos * 100u / 25u);

    std::vector<span_record> spans;
    EXPECT_EQ(richnote::obs::profile_drain(spans), 25u);
}

TEST_F(profile_suite, reset_zeroes_totals_and_discards_spans) {
    richnote::obs::profile_set_enabled(true);
    { RICHNOTE_PROFILE_SCOPE(profile_slot::sim_tick); }
    richnote::obs::profile_set_enabled(false);
    richnote::obs::profile_reset();
    EXPECT_EQ(richnote::obs::profile_read(profile_slot::sim_tick).calls, 0u);
    std::vector<span_record> spans;
    EXPECT_EQ(richnote::obs::profile_drain(spans), 0u);
}

TEST_F(profile_suite, lanes_are_reused_across_thread_generations) {
    // The experiment driver respawns its worker pool every round; with one
    // lane per thread *ever*, 500 rounds x 8 workers would hoard memory.
    // Sequential generations of threads must reuse a bounded lane set.
    profile_config cfg;
    cfg.sample_every = 1;
    richnote::obs::profile_configure(cfg);
    richnote::obs::profile_set_enabled(true);
    constexpr int generations = 8;
    constexpr int threads_per_generation = 2;
    for (int g = 0; g < generations; ++g) {
        std::vector<std::thread> pool;
        for (int t = 0; t < threads_per_generation; ++t) {
            pool.emplace_back([] {
                RICHNOTE_PROFILE_SCOPE(profile_slot::scheduler_plan);
            });
        }
        for (auto& th : pool) th.join();
    }
    richnote::obs::profile_set_enabled(false);

    const auto totals = richnote::obs::profile_read(profile_slot::scheduler_plan);
    EXPECT_EQ(totals.calls,
              static_cast<std::uint64_t>(generations * threads_per_generation));

    std::vector<span_record> spans;
    richnote::obs::profile_drain(spans);
    std::uint32_t max_lane = 0;
    for (const span_record& s : spans) max_lane = std::max(max_lane, s.lane);
    // Lane indices stay bounded by the peak concurrency (+1 for the main
    // thread's lane if it ever profiled), not by generations x threads.
    EXPECT_LT(max_lane, threads_per_generation + 1u);
}

TEST_F(profile_suite, full_ring_drops_spans_and_counts_them) {
    profile_config cfg;
    cfg.sample_every = 1;
    cfg.ring_capacity = 4; // tiny ring: almost everything drops
    richnote::obs::profile_configure(cfg);
    richnote::obs::profile_set_enabled(true);
    std::thread worker([] {
        for (int i = 0; i < 100; ++i) {
            RICHNOTE_PROFILE_SCOPE(profile_slot::forest_fit);
        }
    });
    worker.join();
    richnote::obs::profile_set_enabled(false);

    EXPECT_EQ(richnote::obs::profile_read(profile_slot::forest_fit).calls, 100u);
    std::vector<span_record> spans;
    const std::size_t drained = richnote::obs::profile_drain(spans);
    EXPECT_LE(drained, 4u);
    EXPECT_EQ(richnote::obs::profile_dropped(), 100u - drained);
}

} // namespace

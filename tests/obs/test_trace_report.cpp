// trace-report tests: the flat-JSON line parser (including truncated-line
// tolerance), the per-type/per-field percentile aggregation, per-user
// rollups, and deterministic rendering.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_report.hpp"

namespace {

using richnote::obs::build_trace_report;
using richnote::obs::parse_flat_json;
using richnote::obs::trace_value;

using fields_t = std::vector<std::pair<std::string, trace_value>>;

TEST(trace_report_suite, parses_flat_objects_with_typed_values) {
    fields_t fields;
    ASSERT_TRUE(parse_flat_json(
        R"({"type":"deliver","user":3,"utility":0.5,"metered":true,"net":"wifi"})",
        fields));
    ASSERT_EQ(fields.size(), 5u);
    EXPECT_EQ(fields[0].first, "type");
    EXPECT_EQ(fields[0].second.str, "deliver");
    EXPECT_EQ(fields[1].second.num, 3.0);
    EXPECT_EQ(fields[2].second.num, 0.5);
    EXPECT_TRUE(fields[3].second.flag);
    EXPECT_EQ(fields[4].second.str, "wifi");
    ASSERT_TRUE(parse_flat_json("{}", fields));
    EXPECT_TRUE(fields.empty());
    // Escapes and scientific notation round-trip.
    ASSERT_TRUE(parse_flat_json(R"({"s":"a\"b\\c\n","v":1.5e-3})", fields));
    EXPECT_EQ(fields[0].second.str, "a\"b\\c\n");
    EXPECT_DOUBLE_EQ(fields[1].second.num, 1.5e-3);
}

TEST(trace_report_suite, rejects_truncated_and_malformed_lines) {
    fields_t fields;
    // The prefixes a SIGKILLed writer could leave behind.
    EXPECT_FALSE(parse_flat_json(R"({"type":"deliver","uti)", fields));
    EXPECT_FALSE(parse_flat_json(R"({"type":"deliver")", fields));
    EXPECT_FALSE(parse_flat_json(R"({"type":)", fields));
    EXPECT_FALSE(parse_flat_json("", fields));
    EXPECT_FALSE(parse_flat_json("not json", fields));
    EXPECT_FALSE(parse_flat_json(R"({"a":1} trailing)", fields));
}

std::string sample_trace() {
    std::ostringstream t;
    // Two users, three rounds: 10 delivers with utility 0.1..1.0 and
    // delay_sec 1..10, plus plan summaries and one fault.
    for (int i = 1; i <= 10; ++i) {
        t << R"({"type":"deliver","user":)" << (i % 2) << R"(,"round":)" << (i % 3)
          << R"(,"item":)" << i << R"(,"utility":)" << 0.1 * i
          << R"(,"delay_sec":)" << i << "}\n";
    }
    t << R"({"type":"plan","user":0,"round":0,"candidates":5,"selected":2})" << "\n";
    t << R"({"type":"fault","user":1,"round":2,"kind":"blackout"})" << "\n";
    return t.str();
}

TEST(trace_report_suite, aggregates_types_fields_and_user_rollups) {
    std::istringstream in(sample_trace());
    const auto report = build_trace_report(in);

    EXPECT_EQ(report.total_events, 12u);
    EXPECT_EQ(report.skipped_lines, 0u);
    EXPECT_EQ(report.rounds, 3u);
    EXPECT_EQ(report.users, 2u);
    ASSERT_EQ(report.by_type.count("deliver"), 1u);
    const auto& deliver = report.by_type.at("deliver");
    EXPECT_EQ(deliver.count, 10u);
    // item/user/round are identities, not measurements.
    EXPECT_EQ(deliver.fields.count("item"), 0u);
    const auto& delay = deliver.fields.at("delay_sec");
    EXPECT_EQ(delay.count, 10u);
    EXPECT_DOUBLE_EQ(delay.min, 1.0);
    EXPECT_DOUBLE_EQ(delay.p50, 5.0);  // nearest-rank: ceil(0.5*10) = 5th
    EXPECT_DOUBLE_EQ(delay.p95, 10.0); // ceil(0.95*10) = 10th
    EXPECT_DOUBLE_EQ(delay.p99, 10.0);
    EXPECT_DOUBLE_EQ(delay.max, 10.0);
    EXPECT_DOUBLE_EQ(delay.mean, 5.5);
    EXPECT_NEAR(deliver.fields.at("utility").mean, 0.55, 1e-12);
    EXPECT_EQ(report.by_type.at("plan").fields.at("candidates").count, 1u);
    // The fault event has no numeric fields at all.
    EXPECT_TRUE(report.by_type.at("fault").fields.empty());

    // Rollups: user 1 got the odd items (utility 0.1+0.3+...+0.9 = 2.5).
    ASSERT_EQ(report.top_users.size(), 2u);
    EXPECT_EQ(report.top_users[0].user, 0u); // 5 delivers + plan = 6 events
    EXPECT_EQ(report.top_users[0].events, 6u);
    EXPECT_EQ(report.top_users[0].delivers, 5u);
    EXPECT_EQ(report.top_users[1].user, 1u);
    EXPECT_NEAR(report.top_users[1].utility, 2.5, 1e-12);
    EXPECT_DOUBLE_EQ(report.top_users[1].delay_sec, 5.0); // (1+3+5+7+9)/5
}

TEST(trace_report_suite, skips_bad_lines_and_caps_top_users) {
    std::istringstream in(sample_trace() + "{\"type\":\"deliver\",\"trunca");
    const auto report = build_trace_report(in, /*top_n=*/1);
    EXPECT_EQ(report.total_events, 12u);
    EXPECT_EQ(report.skipped_lines, 1u);
    EXPECT_EQ(report.users, 2u); // rollup counts everyone...
    EXPECT_EQ(report.top_users.size(), 1u); // ...the table shows top_n
}

TEST(trace_report_suite, rendering_is_deterministic_and_complete) {
    std::istringstream in1(sample_trace());
    std::istringstream in2(sample_trace());
    std::ostringstream out1;
    std::ostringstream out2;
    richnote::obs::write_trace_report(build_trace_report(in1), out1);
    richnote::obs::write_trace_report(build_trace_report(in2), out2);
    EXPECT_EQ(out1.str(), out2.str());
    const std::string& text = out1.str();
    EXPECT_NE(text.find("trace report: 12 events, 3 rounds, 2 users"),
              std::string::npos) << text;
    EXPECT_NE(text.find("== events by type =="), std::string::npos);
    EXPECT_NE(text.find("deliver  10"), std::string::npos);
    EXPECT_NE(text.find("delay_sec  10  1  5  10  10  10  5.5"), std::string::npos)
        << text;
    EXPECT_NE(text.find("== top users by events =="), std::string::npos);
}

} // namespace

// Embedded exposition server tests: ephemeral-port bind, /metrics in valid
// Prometheus text that reconciles with the published registry, /progress
// and /healthz JSON, the 400/404/405/411/413 error paths, POST handler
// mounting, and concurrent connections against the handler pool. The
// client is a plain blocking POSIX socket — the same thing curl would do.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/expo_server.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prom_text.hpp"

namespace {

using richnote::obs::expo_server;
using richnote::obs::metrics_registry;
using richnote::obs::progress_snapshot;

/// One-shot HTTP request against 127.0.0.1:port; returns the raw response.
std::string http_get(std::uint16_t port, const std::string& request) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char chunk[2048];
    ssize_t n = 0;
    while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
        response.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

std::string get_path(std::uint16_t port, const std::string& path) {
    return http_get(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

std::string http_post(std::uint16_t port, const std::string& path,
                      const std::string& body) {
    return http_get(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body);
}

std::string body_of(const std::string& response) {
    const auto split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string() : response.substr(split + 4);
}

bool valid_metric_name(const std::string& name) {
    if (name.empty() || (std::isdigit(static_cast<unsigned char>(name[0])) != 0))
        return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok) return false;
    }
    return true;
}

/// Prometheus text-format 0.0.4 grammar: every line is a comment or
/// `name[{labels}] value`, every sample's name is announced by a # TYPE.
void expect_valid_prometheus(const std::string& text) {
    std::istringstream lines(text);
    std::string line;
    std::set<std::string> typed;
    std::size_t samples = 0;
    while (std::getline(lines, line)) {
        if (line.empty()) continue;
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            std::string name;
            std::string kind;
            fields >> name >> kind;
            EXPECT_TRUE(valid_metric_name(name)) << line;
            EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
                << line;
            typed.insert(name);
            continue;
        }
        if (line[0] == '#') continue; // HELP or other comment
        // Sample line: name or name{labels}, one space, a float.
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        std::string name = line.substr(0, std::min(brace, space));
        EXPECT_TRUE(valid_metric_name(name)) << line;
        // Histogram series (_bucket/_sum/_count) are announced under the
        // base name.
        for (const char* suffix : {"_bucket", "_sum", "_count"}) {
            if (name.size() > std::strlen(suffix) &&
                name.rfind(suffix) == name.size() - std::strlen(suffix) &&
                typed.count(name.substr(0, name.size() - std::strlen(suffix))) > 0) {
                name.resize(name.size() - std::strlen(suffix));
                break;
            }
        }
        EXPECT_EQ(typed.count(name), 1u) << "sample without # TYPE: " << line;
        const std::string value = line.substr(line.rfind(' ') + 1);
        char* end = nullptr;
        std::strtod(value.c_str(), &end);
        EXPECT_TRUE(end != nullptr && *end == '\0') << line;
        ++samples;
    }
    EXPECT_GT(samples, 0u);
}

TEST(expo_server_suite, binds_an_ephemeral_port_and_serves_healthz) {
    expo_server server(0);
    ASSERT_GT(server.port(), 0);
    const std::string response = get_path(server.port(), "/healthz");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"), std::string::npos);
    // Build identity rides along with liveness (ISSUE 10 satellite):
    // git describe, build type and compiler from the configure-time
    // manifest, plus the runtime-settable uarch.
    const std::string body = body_of(response);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
    EXPECT_NE(body.find("\"git_describe\":"), std::string::npos) << body;
    EXPECT_NE(body.find("\"build_type\":"), std::string::npos) << body;
    EXPECT_NE(body.find("\"compiler\":"), std::string::npos) << body;
    EXPECT_NE(body.find("\"uarch\":\"unknown\""), std::string::npos) << body;
    EXPECT_EQ(body.back(), '\n');
    EXPECT_GE(server.requests_served(), 1u);

    server.set_uarch("x86-64/avx2");
    EXPECT_NE(body_of(get_path(server.port(), "/healthz")).find("\"uarch\":\"x86-64/avx2\""),
              std::string::npos);
}

TEST(expo_server_suite, published_documents_are_served_and_listed_in_404) {
    expo_server server(0);
    server.publish_document("/exemplars", "application/json", "{\"exemplars\":[]}\n");
    const std::string response = get_path(server.port(), "/exemplars");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("application/json"), std::string::npos);
    EXPECT_EQ(body_of(response), "{\"exemplars\":[]}\n");

    // Republishing replaces the body atomically.
    server.publish_document("/exemplars", "application/json", "{\"exemplars\":[1]}\n");
    EXPECT_EQ(body_of(get_path(server.port(), "/exemplars")), "{\"exemplars\":[1]}\n");

    // The 404 listing names every served path, documents and POST mounts
    // included.
    server.set_post_handler("/ingest", [](const std::string&) {
        return expo_server::post_result{200, "{}\n"};
    });
    const std::string miss = body_of(get_path(server.port(), "/nope"));
    EXPECT_NE(miss.find("/healthz"), std::string::npos) << miss;
    EXPECT_NE(miss.find("/metrics"), std::string::npos) << miss;
    EXPECT_NE(miss.find("/progress"), std::string::npos) << miss;
    EXPECT_NE(miss.find("/exemplars"), std::string::npos) << miss;
    EXPECT_NE(miss.find("POST"), std::string::npos) << miss;
    EXPECT_NE(miss.find("/ingest"), std::string::npos) << miss;

    // Builtins cannot be shadowed by a document.
    EXPECT_THROW(server.publish_document("/metrics", "text/plain", "x"),
                 richnote::precondition_error);
    EXPECT_THROW(server.publish_document("no-slash", "text/plain", "x"),
                 richnote::precondition_error);
}

TEST(expo_server_suite, metrics_render_as_valid_prometheus_and_reconcile) {
    expo_server server(0);
    metrics_registry registry;
    registry.count("richnote.delivery.delivered_total", 42);
    registry.count("richnote.faults.retries_total", 7);
    registry.gauge_set("richnote.run.delivery_ratio", 0.625);
    registry.make_histogram("richnote.sched.plan_latency_us", {10.0, 100.0});
    registry.observe("richnote.sched.plan_latency_us", 5.0);
    registry.observe("richnote.sched.plan_latency_us", 50.0);
    registry.observe("richnote.sched.plan_latency_us", 500.0);
    server.publish_metrics(registry);

    const std::string response = get_path(server.port(), "/metrics");
    EXPECT_NE(response.find("200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
    const std::string body = body_of(response);
    expect_valid_prometheus(body);

    // The scrape carries the registry's exact values...
    EXPECT_NE(body.find("richnote_delivery_delivered_total 42"), std::string::npos)
        << body;
    EXPECT_NE(body.find("richnote_faults_retries_total 7"), std::string::npos);
    EXPECT_NE(body.find("richnote_run_delivery_ratio 0.625"), std::string::npos);
    // ...cumulative histogram buckets with an +Inf terminator...
    EXPECT_NE(body.find("richnote_sched_plan_latency_us_bucket{le=\"10\"} 1"),
              std::string::npos);
    EXPECT_NE(body.find("richnote_sched_plan_latency_us_bucket{le=\"100\"} 2"),
              std::string::npos);
    EXPECT_NE(body.find("richnote_sched_plan_latency_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(body.find("richnote_sched_plan_latency_us_count 3"), std::string::npos);
    // ...and the derived quantile summary gauges (publishing must not have
    // mutated the caller's registry to produce them).
    EXPECT_NE(body.find("richnote_sched_plan_latency_us_p50"), std::string::npos);
    EXPECT_EQ(registry.gauge_count(), 1u);
}

TEST(expo_server_suite, progress_updates_round_by_round) {
    expo_server server(0);
    progress_snapshot snap;
    snap.round = 17;
    snap.total_rounds = 168;
    snap.users = 200;
    snap.rounds_per_sec = 250.0;
    snap.queue_items_total = 90.0;
    server.publish_progress(snap);

    std::string body = body_of(get_path(server.port(), "/progress"));
    EXPECT_NE(body.find("\"round\":17"), std::string::npos) << body;
    EXPECT_NE(body.find("\"total_rounds\":168"), std::string::npos);
    EXPECT_NE(body.find("\"users\":200"), std::string::npos);
    EXPECT_NE(body.find("\"done\":false"), std::string::npos);

    snap.round = 168;
    snap.done = true;
    server.publish_progress(snap);
    body = body_of(get_path(server.port(), "/progress"));
    EXPECT_NE(body.find("\"round\":168"), std::string::npos);
    EXPECT_NE(body.find("\"done\":true"), std::string::npos);
}

TEST(expo_server_suite, unknown_paths_and_methods_are_rejected) {
    expo_server server(0);
    EXPECT_NE(get_path(server.port(), "/nope").find("404"), std::string::npos);
    // POST is a supported method now, but nothing is mounted at /metrics.
    EXPECT_NE(http_post(server.port(), "/metrics", "x").find("404"), std::string::npos);
    EXPECT_NE(http_get(server.port(), "PUT /metrics HTTP/1.1\r\n\r\n").find("405"),
              std::string::npos);
    // A query string is stripped, not 404ed.
    EXPECT_NE(get_path(server.port(), "/healthz?x=1").find("200 OK"),
              std::string::npos);
    server.stop();
    server.stop(); // idempotent
}

TEST(expo_server_suite, malformed_and_oversized_requests_are_bounded) {
    expo_server server(0);
    // Garbage request line.
    EXPECT_NE(http_get(server.port(), "???\r\n\r\n").find("400"), std::string::npos);
    // A head that can never fit the cap is cut off with 400, not buffered
    // forever.
    const std::string huge_header =
        "GET / HTTP/1.1\r\nX-Filler: " + std::string(64 * 1024, 'a') + "\r\n\r\n";
    EXPECT_NE(http_get(server.port(), huge_header).find("400"), std::string::npos);
    // POST bodies require a Content-Length...
    server.set_post_handler(
        "/echo", [](const std::string& body) {
            return expo_server::post_result{200, body};
        });
    EXPECT_NE(http_get(server.port(), "POST /echo HTTP/1.1\r\n\r\nhello").find("411"),
              std::string::npos);
    // ...a parsable one...
    EXPECT_NE(http_get(server.port(),
                       "POST /echo HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
                  .find("400"),
              std::string::npos);
    // ...and one under the configured cap.
    server.set_max_body_bytes(16);
    EXPECT_NE(http_post(server.port(), "/echo", std::string(17, 'x')).find("413"),
              std::string::npos);
    const std::string ok = http_post(server.port(), "/echo", "0123456789");
    EXPECT_NE(ok.find("200 OK"), std::string::npos);
    EXPECT_EQ(body_of(ok), "0123456789");
}

TEST(expo_server_suite, post_handler_status_is_passed_through) {
    expo_server server(0);
    server.set_post_handler("/ingest", [](const std::string& body) {
        if (body == "full") return expo_server::post_result{503, "{\"backoff\":true}\n"};
        return expo_server::post_result{202, "{\"accepted\":1}\n"};
    });
    EXPECT_NE(http_post(server.port(), "/ingest", "line").find("202"),
              std::string::npos);
    EXPECT_NE(http_post(server.port(), "/ingest", "full").find("503"),
              std::string::npos);
}

TEST(expo_server_suite, serves_concurrent_connections) {
    expo_server server(0, /*handler_threads=*/4);
    metrics_registry registry;
    registry.count("richnote.delivery.delivered_total", 1);
    server.publish_metrics(registry);
    server.set_post_handler("/echo", [](const std::string& body) {
        return expo_server::post_result{200, body};
    });

    constexpr int clients = 8;
    constexpr int requests_each = 5;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (int i = 0; i < requests_each; ++i) {
                if (c % 2 == 0) {
                    const std::string r = get_path(server.port(), "/metrics");
                    if (r.find("200 OK") == std::string::npos) ++failures;
                } else {
                    const std::string payload =
                        "c" + std::to_string(c) + "i" + std::to_string(i);
                    const std::string r = http_post(server.port(), "/echo", payload);
                    if (r.find("200 OK") == std::string::npos ||
                        body_of(r) != payload)
                        ++failures;
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(server.requests_served(),
              static_cast<std::uint64_t>(clients * requests_each));
}

} // namespace

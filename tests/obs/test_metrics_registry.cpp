// metrics_registry unit tests: counter/gauge semantics, fixed-bucket
// histogram edges, the one-name-one-layout contract and deterministic
// JSON/CSV export.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"

namespace {

using richnote::obs::histogram;
using richnote::obs::metrics_registry;

TEST(metrics_registry_suite, counters_accumulate_and_default_to_zero) {
    metrics_registry registry;
    EXPECT_EQ(registry.counter("richnote.delivery.delivered_total"), 0u);
    registry.count("richnote.delivery.delivered_total");
    registry.count("richnote.delivery.delivered_total", 41);
    EXPECT_EQ(registry.counter("richnote.delivery.delivered_total"), 42u);
    EXPECT_EQ(registry.counter_count(), 1u);
}

TEST(metrics_registry_suite, counters_hold_past_32_bits) {
    metrics_registry registry;
    registry.count("richnote.faults.retries_total", std::uint64_t{1} << 40);
    registry.count("richnote.faults.retries_total", std::uint64_t{1} << 40);
    EXPECT_EQ(registry.counter("richnote.faults.retries_total"), std::uint64_t{1} << 41);
}

TEST(metrics_registry_suite, gauges_last_write_wins) {
    metrics_registry registry;
    EXPECT_EQ(registry.gauge("richnote.run.delivery_ratio"), 0.0);
    registry.gauge_set("richnote.run.delivery_ratio", 0.25);
    registry.gauge_set("richnote.run.delivery_ratio", 0.75);
    EXPECT_EQ(registry.gauge("richnote.run.delivery_ratio"), 0.75);
}

TEST(metrics_registry_suite, histogram_buckets_are_inclusive_upper_bounds) {
    histogram h({1.0, 10.0, 100.0});
    h.observe(0.5);   // <= 1
    h.observe(1.0);   // <= 1 (inclusive edge)
    h.observe(1.5);   // <= 10
    h.observe(100.0); // <= 100 (inclusive edge)
    h.observe(101.0); // overflow
    EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
    EXPECT_EQ(h.total_count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 100.0 + 101.0);
    EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
}

TEST(metrics_registry_suite, histogram_layout_is_part_of_the_name_contract) {
    metrics_registry registry;
    registry.make_histogram("richnote.sched.plan_latency_us", {1, 10, 100});
    registry.observe("richnote.sched.plan_latency_us", 5.0);
    // Re-registering with the SAME bounds fetches the existing histogram...
    registry.make_histogram("richnote.sched.plan_latency_us", {1, 10, 100});
    EXPECT_EQ(registry.get_histogram("richnote.sched.plan_latency_us").total_count(), 1u);
    // ...but a different layout under the same name is a bug.
    EXPECT_THROW(registry.make_histogram("richnote.sched.plan_latency_us", {1, 2}),
                 std::exception);
    // Observing into a histogram nobody registered is a bug too.
    EXPECT_THROW(registry.observe("richnote.sched.unknown_us", 1.0), std::exception);
    EXPECT_THROW(registry.get_histogram("nope"), std::exception);
    EXPECT_THROW(histogram({3.0, 2.0, 1.0}), std::exception); // bounds must ascend
}

TEST(metrics_registry_suite, json_export_is_sorted_and_deterministic) {
    // Insert in reverse-alphabetical order; export must still sort by name,
    // so two registries with equal contents emit equal bytes.
    metrics_registry a;
    a.count("richnote.z_total", 2);
    a.count("richnote.a_total", 1);
    a.gauge_set("richnote.ratio", 0.5);
    a.make_histogram("richnote.lat_us", {1.0, 2.0});
    a.observe("richnote.lat_us", 1.5);

    metrics_registry b;
    b.make_histogram("richnote.lat_us", {1.0, 2.0});
    b.observe("richnote.lat_us", 1.5);
    b.gauge_set("richnote.ratio", 0.5);
    b.count("richnote.a_total", 1);
    b.count("richnote.z_total", 2);

    std::ostringstream ja;
    std::ostringstream jb;
    a.write_json(ja);
    b.write_json(jb);
    EXPECT_EQ(ja.str(), jb.str());
    EXPECT_LT(ja.str().find("richnote.a_total"), ja.str().find("richnote.z_total"));

    std::ostringstream ca;
    std::ostringstream cb;
    a.write_csv(ca);
    b.write_csv(cb);
    EXPECT_EQ(ca.str(), cb.str());
    EXPECT_NE(ca.str().find("counter,richnote.a_total,value,1"), std::string::npos);
    EXPECT_NE(ca.str().find("histogram,richnote.lat_us,le_1,0"), std::string::npos);
    EXPECT_NE(ca.str().find("histogram,richnote.lat_us,le_inf,0"), std::string::npos);
}

TEST(metrics_registry_suite, empty_registry_exports_valid_skeletons) {
    metrics_registry registry;
    std::ostringstream json;
    registry.write_json(json);
    EXPECT_NE(json.str().find("\"counters\": {}"), std::string::npos);
    EXPECT_NE(json.str().find("\"gauges\": {}"), std::string::npos);
    EXPECT_NE(json.str().find("\"histograms\": {}"), std::string::npos);
    std::ostringstream csv;
    registry.write_csv(csv);
    EXPECT_EQ(csv.str(), "kind,name,field,value\n");
}

TEST(metrics_registry_suite, profile_export_uses_canonical_names) {
    richnote::obs::profile_set_enabled(false);
    richnote::obs::profile_reset();
    {
        // Idle profiler: nothing recorded, nothing exported.
        metrics_registry registry;
        richnote::obs::profile_export(registry);
        EXPECT_EQ(registry.counter_count(), 0u);
    }
    richnote::obs::profile_set_enabled(true);
    { RICHNOTE_PROFILE_SCOPE(richnote::obs::profile_slot::mckp_solve); }
    richnote::obs::profile_set_enabled(false);
    metrics_registry registry;
    richnote::obs::profile_export(registry);
    EXPECT_EQ(registry.counter("richnote.profile.mckp_solve.calls_total"), 1u);
    EXPECT_EQ(registry.counter("richnote.profile.broker_round.calls_total"), 0u);
    richnote::obs::profile_reset();
}

// ---- quantile estimation (p50/p95/p99 summary gauges, DESIGN.md §10) ----

TEST(metrics_registry_suite, quantile_interpolates_within_buckets) {
    // 100 observations spread uniformly through (0, 100]: one per unit
    // bucket-mass across {10, 20, ..., 100}. The interpolated quantiles of
    // this distribution are exactly q * 100.
    histogram h({10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0});
    for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);   // first bucket's lower edge
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0); // last populated bucket's upper
}

TEST(metrics_registry_suite, quantile_pins_skewed_and_edge_distributions) {
    // Everything in one bucket: quantiles interpolate across (10, 20].
    histogram one({10.0, 20.0});
    for (int i = 0; i < 10; ++i) one.observe(15.0);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(one.quantile(1.0), 20.0);

    // Empty histogram reports 0 for every quantile.
    histogram empty({1.0, 2.0});
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    // Overflow observations clamp to the highest finite bound — the
    // Prometheus histogram_quantile convention for the +Inf bucket.
    histogram overflow({1.0, 2.0});
    overflow.observe(50.0);
    overflow.observe(60.0);
    EXPECT_DOUBLE_EQ(overflow.quantile(0.99), 2.0);

    // 9 fast + 1 slow: p50 sits in the first bucket, p99 in the slow one.
    histogram skew({1.0, 10.0, 100.0});
    for (int i = 0; i < 9; ++i) skew.observe(0.5);
    skew.observe(60.0);
    EXPECT_DOUBLE_EQ(skew.quantile(0.50), 1.0 * (5.0 / 9.0));
    EXPECT_DOUBLE_EQ(skew.quantile(0.99), 10.0 + 0.9 * 90.0);

    EXPECT_THROW(skew.quantile(-0.1), std::exception);
    EXPECT_THROW(skew.quantile(1.5), std::exception);
}

TEST(metrics_registry_suite, export_quantile_gauges_derives_summary_gauges) {
    metrics_registry registry;
    registry.make_histogram("richnote.sched.plan_latency_us", {10.0, 20.0});
    for (int i = 0; i < 10; ++i) registry.observe("richnote.sched.plan_latency_us", 5.0);
    registry.export_quantile_gauges();
    EXPECT_DOUBLE_EQ(registry.gauge("richnote.sched.plan_latency_us.p50"), 5.0);
    EXPECT_DOUBLE_EQ(registry.gauge("richnote.sched.plan_latency_us.p95"), 9.5);
    EXPECT_DOUBLE_EQ(registry.gauge("richnote.sched.plan_latency_us.p99"), 9.9);
}

} // namespace

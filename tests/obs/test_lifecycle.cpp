// Lifecycle observability tests (DESIGN.md §13): the wall-clock stage
// tracker (stage histograms, exemplar ring, telescoping latencies), the
// per-endpoint RED recorder, the Prometheus label/HELP rendering they rely
// on, and `richnote explain`'s deterministic causal-chain reconstruction.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/lifecycle.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prom_text.hpp"

namespace {

using richnote::obs::histogram;
using richnote::obs::lifecycle_tracker;
using richnote::obs::metrics_registry;
using richnote::obs::red_recorder;
using richnote::obs::write_explain;

std::string prom_render(const metrics_registry& registry) {
    std::ostringstream out;
    richnote::obs::write_prometheus_text(registry, out);
    return out.str();
}

TEST(lifecycle_suite, full_stage_chain_folds_into_histograms_and_counters) {
    lifecycle_tracker t;
    t.on_ingested(7, /*user=*/3);
    EXPECT_EQ(t.tracked(), 1u);
    t.on_admitted(7, /*round=*/2);
    t.on_planned(7, /*round=*/2, /*level=*/4);
    t.on_attempt(7, 2);
    t.on_delivered(7, /*round=*/3);
    EXPECT_EQ(t.tracked(), 0u);
    EXPECT_EQ(t.delivered(), 1u);
    EXPECT_EQ(t.dead_lettered(), 0u);

    metrics_registry registry;
    t.export_metrics(registry);
    EXPECT_EQ(registry.get_histogram("richnote.svc.ingest_to_admit_us").total_count(),
              1u);
    EXPECT_EQ(registry.get_histogram("richnote.svc.admit_to_plan_us").total_count(), 1u);
    EXPECT_EQ(registry.get_histogram("richnote.svc.plan_to_deliver_us").total_count(),
              1u);
    EXPECT_EQ(registry.get_histogram("richnote.svc.e2e_us").total_count(), 1u);
    EXPECT_EQ(registry.counter("richnote.svc.lifecycle.delivered_total"), 1u);
    EXPECT_EQ(registry.counter("richnote.svc.lifecycle.dead_lettered_total"), 0u);
    EXPECT_EQ(registry.gauge("richnote.svc.lifecycle.in_flight"), 0.0);
    EXPECT_EQ(registry.counter("richnote.svc.stage_observations_total{stage=e2e}"), 1u);
    EXPECT_EQ(
        registry.counter("richnote.svc.stage_observations_total{stage=ingest_to_admit}"),
        1u);
    EXPECT_EQ(registry.helps().count("richnote.svc.e2e_us"), 1u);

    const auto worst = t.exemplars();
    ASSERT_EQ(worst.size(), 1u);
    EXPECT_EQ(worst[0].id, 7u);
    EXPECT_EQ(worst[0].user, 3u);
    EXPECT_EQ(worst[0].admit_round, 2u);
    EXPECT_EQ(worst[0].plan_round, 2u);
    EXPECT_EQ(worst[0].final_round, 3u);
    EXPECT_EQ(worst[0].level, 4u);
    EXPECT_EQ(worst[0].attempts, 1u);
    // Stage latencies telescope: the three gaps sum to e2e exactly.
    EXPECT_DOUBLE_EQ(worst[0].ingest_to_admit_us + worst[0].admit_to_plan_us +
                         worst[0].plan_to_deliver_us,
                     worst[0].e2e_us);
    EXPECT_GE(worst[0].e2e_us, 0.0);
}

TEST(lifecycle_suite, unknown_ids_are_ignored_and_abandon_forgets) {
    lifecycle_tracker t;
    // Stage hooks never create records: only on_ingested does.
    t.on_admitted(1, 0);
    t.on_planned(1, 0, 2);
    t.on_attempt(1, 0);
    t.on_delivered(1, 0);
    t.on_dead_lettered(1, 0);
    EXPECT_EQ(t.tracked(), 0u);
    EXPECT_EQ(t.delivered(), 0u);
    EXPECT_EQ(t.dead_lettered(), 0u);

    // Backpressure: the ring push failed, the stamp is dropped.
    t.on_ingested(2, 0);
    t.abandon(2);
    EXPECT_EQ(t.tracked(), 0u);
    t.on_delivered(2, 1);
    EXPECT_EQ(t.delivered(), 0u);
}

TEST(lifecycle_suite, dead_letters_count_but_do_not_pollute_latency_histograms) {
    lifecycle_tracker t;
    t.on_ingested(5, 1);
    t.on_admitted(5, 1);
    t.on_dead_lettered(5, 9);
    EXPECT_EQ(t.dead_lettered(), 1u);
    EXPECT_EQ(t.delivered(), 0u);
    EXPECT_EQ(t.tracked(), 0u);
    metrics_registry registry;
    t.export_metrics(registry);
    EXPECT_EQ(registry.get_histogram("richnote.svc.e2e_us").total_count(), 0u);
    EXPECT_EQ(registry.counter("richnote.svc.lifecycle.dead_lettered_total"), 1u);
    EXPECT_TRUE(t.exemplars().empty());
}

TEST(lifecycle_suite, skipped_stages_collapse_onto_the_previous_stamp) {
    lifecycle_tracker t;
    // Delivered without ever being admitted or planned (e.g. a timeline
    // the service only partially observed): the latencies still telescope.
    t.on_ingested(11, 0);
    t.on_delivered(11, 4);
    const auto worst = t.exemplars();
    ASSERT_EQ(worst.size(), 1u);
    EXPECT_DOUBLE_EQ(worst[0].ingest_to_admit_us, 0.0);
    EXPECT_DOUBLE_EQ(worst[0].admit_to_plan_us, 0.0);
    EXPECT_DOUBLE_EQ(worst[0].plan_to_deliver_us, worst[0].e2e_us);
}

TEST(lifecycle_suite, duplicate_ingest_keeps_the_first_timeline) {
    lifecycle_tracker t;
    t.on_ingested(9, 2);
    t.on_ingested(9, 6); // at-least-once wire: same id republished
    EXPECT_EQ(t.tracked(), 1u);
    t.on_delivered(9, 1);
    EXPECT_EQ(t.delivered(), 1u);
    const auto worst = t.exemplars();
    ASSERT_EQ(worst.size(), 1u);
    EXPECT_EQ(worst[0].user, 2u); // the first publish's user stamp survives
}

TEST(lifecycle_suite, exemplar_ring_keeps_the_worst_k_sorted) {
    lifecycle_tracker t(/*exemplar_capacity=*/2);
    for (std::uint64_t id = 1; id <= 4; ++id) {
        t.on_ingested(id, 0);
        t.on_delivered(id, id);
    }
    const auto worst = t.exemplars();
    ASSERT_EQ(worst.size(), 2u);
    EXPECT_GE(worst[0].e2e_us, worst[1].e2e_us);

    const std::string json = t.exemplars_json();
    EXPECT_EQ(json.rfind("{\"exemplars\":[", 0), 0u) << json;
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"e2e_us\":"), std::string::npos);
    EXPECT_NE(json.find("\"final_round\":"), std::string::npos);

    lifecycle_tracker empty;
    EXPECT_EQ(empty.exemplars_json(), "{\"exemplars\":[]}\n");
}

TEST(lifecycle_suite, red_recorder_exports_labeled_series) {
    red_recorder red;
    red.observe("ingest", 200, 120.0);
    red.observe("ingest", 503, 80.0);
    red.observe("round", 200, 50000.0);

    metrics_registry registry;
    red.export_metrics(registry);
    EXPECT_EQ(registry.counter("richnote.svc.http.requests_total{endpoint=ingest}"),
              2u);
    EXPECT_EQ(registry.counter("richnote.svc.http.errors_total{endpoint=ingest}"), 1u);
    EXPECT_EQ(registry.counter("richnote.svc.http.requests_total{endpoint=round}"), 1u);
    EXPECT_EQ(registry.counter("richnote.svc.http.errors_total{endpoint=round}"), 0u);
    EXPECT_EQ(
        registry.get_histogram("richnote.svc.http.duration_us{endpoint=ingest}")
            .total_count(),
        2u);

    const std::string text = prom_render(registry);
    EXPECT_NE(text.find("richnote_svc_http_requests_total{endpoint=\"ingest\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("richnote_svc_http_errors_total{endpoint=\"ingest\"} 1"),
              std::string::npos);
    // One shared TYPE header for both endpoint series.
    EXPECT_EQ(text.find("# TYPE richnote_svc_http_requests_total counter"),
              text.rfind("# TYPE richnote_svc_http_requests_total counter"));
    // Labeled histogram buckets merge `le` into the endpoint's brace pair.
    EXPECT_NE(
        text.find("richnote_svc_http_duration_us_bucket{endpoint=\"ingest\",le=\"100\"}"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("richnote_svc_http_duration_us_count{endpoint=\"ingest\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("# HELP richnote_svc_http_requests_total"), std::string::npos);
}

TEST(lifecycle_suite, prom_text_escapes_label_values_and_help) {
    metrics_registry registry;
    registry.count("app.req_total{path=/a\"b\\c}", 4);
    registry.set_help("app.req_total", "line one\nback\\slash");
    const std::string text = prom_render(registry);
    EXPECT_NE(text.find("app_req_total{path=\"/a\\\"b\\\\c\"} 4"), std::string::npos)
        << text;
    EXPECT_NE(text.find("# HELP app_req_total line one\\nback\\\\slash"),
              std::string::npos)
        << text;
}

TEST(lifecycle_suite, labeled_quantile_gauges_fold_back_onto_the_base) {
    metrics_registry registry;
    histogram h({10.0, 100.0});
    h.observe(5.0);
    h.observe(50.0);
    registry.set_histogram("svc.latency_us{endpoint=round}", h);
    registry.export_quantile_gauges();
    const std::string text = prom_render(registry);
    // `svc.latency_us{endpoint=round}.p50` renders as the labeled _p50 gauge.
    EXPECT_NE(text.find("svc_latency_us_p50{endpoint=\"round\"}"), std::string::npos)
        << text;

    // set_histogram replaces a previous snapshot wholesale.
    histogram h2({10.0, 100.0});
    h2.observe(1.0);
    registry.set_histogram("svc.latency_us{endpoint=round}", h2);
    EXPECT_EQ(registry.get_histogram("svc.latency_us{endpoint=round}").total_count(),
              1u);
    EXPECT_THROW(registry.set_histogram("svc.bad", histogram()),
                 richnote::precondition_error);
}

// ----------------------------------------------------------- explain ----

std::string sample_trace() {
    return
        R"({"type":"lc_ingest","user":3,"round":1,"item":42,"created_at":3600})" "\n"
        R"({"type":"lc_ingest","user":9,"round":1,"item":77,"created_at":10})" "\n"
        R"({"type":"lc_admit","user":3,"round":2,"item":42,"wait_rounds":1})" "\n"
        "this line is not json and must be skipped\n"
        R"({"type":"decision","user":3,"round":2,"item":42,"level":3,"levels":5,"size_bytes":2048,"term_queue":1.5,"term_energy":-0.25,"term_value":2,"adjusted":3.25,"utility":0.875})" "\n"
        R"({"type":"transfer_cut","user":3,"round":2,"item":42,"moved_bytes":512,"high_water_bytes":512,"fraction":0.25})" "\n"
        R"({"type":"retry_backoff","user":3,"round":2,"item":42,"attempts":1,"not_before":7200})" "\n"
        R"({"type":"deliver","user":3,"round":3,"item":42,"level":3,"bytes":2048,"utility":0.875,"delay_sec":120})" "\n";
}

TEST(explain_suite, reconstructs_one_notifications_causal_chain) {
    std::istringstream in(sample_trace());
    std::ostringstream out;
    EXPECT_TRUE(write_explain(in, 42, out));
    const std::string text = out.str();
    EXPECT_NE(text.find("notification 42 (user 3)"), std::string::npos) << text;
    EXPECT_NE(text.find("ingested      round 1  created_at=3600"), std::string::npos)
        << text;
    EXPECT_NE(text.find("admitted      round 2  wait_rounds=1"), std::string::npos);
    EXPECT_NE(text.find("planned       round 2  level=3/5 size_bytes=2048"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("eq7: term_queue=1.5 term_energy=-0.25 term_value=2"
                        " adjusted=3.25 utility=0.875"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("attempt 1     round 2  cut mid-flight: moved_bytes=512"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("retry         round 2  attempts=1 not_before=7200"),
              std::string::npos);
    EXPECT_NE(text.find("delivered     round 3  level=3 bytes=2048"),
              std::string::npos);
    EXPECT_NE(text.find("outcome: delivered (round 3, 7 trace rows)"),
              std::string::npos)
        << text;
    // The other notification's events never leak into this chain.
    EXPECT_EQ(text.find("77"), std::string::npos);
}

TEST(explain_suite, is_a_pure_function_of_the_trace_bytes) {
    std::string first;
    std::string second;
    {
        std::istringstream in(sample_trace());
        std::ostringstream out;
        write_explain(in, 42, out);
        first = out.str();
    }
    {
        std::istringstream in(sample_trace());
        std::ostringstream out;
        write_explain(in, 42, out);
        second = out.str();
    }
    EXPECT_EQ(first, second);
}

TEST(explain_suite, unknown_id_reports_and_returns_false) {
    std::istringstream in(sample_trace());
    std::ostringstream out;
    EXPECT_FALSE(write_explain(in, 12345, out));
    EXPECT_EQ(out.str(), "notification 12345: no events in trace\n");
}

TEST(explain_suite, dead_letter_outcome_and_unknown_event_types) {
    const std::string trace =
        R"({"type":"lc_ingest","user":0,"round":0,"item":8,"created_at":0})" "\n"
        R"({"type":"mystery_event","user":0,"round":1,"item":8})" "\n"
        R"({"type":"dead_letter","user":0,"round":5,"item":8,"attempts":4})" "\n";
    std::istringstream in(trace);
    std::ostringstream out;
    EXPECT_TRUE(write_explain(in, 8, out));
    const std::string text = out.str();
    EXPECT_NE(text.find("mystery_event round 1"), std::string::npos) << text;
    EXPECT_NE(text.find("dead_lettered round 5  attempts=4"), std::string::npos);
    EXPECT_NE(text.find("outcome: dead_lettered (round 5"), std::string::npos);
}

} // namespace

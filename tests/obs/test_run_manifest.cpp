// run_manifest unit tests: schema tag, insertion-ordered config echo,
// build-identity stamping and file output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/build_info.hpp"
#include "obs/run_manifest.hpp"

namespace {

using richnote::obs::run_manifest;

TEST(run_manifest_suite, json_carries_schema_tool_seed_and_build) {
    run_manifest manifest("fig3_performance");
    manifest.set_seed(42);
    manifest.set_build("v1.2.3-4-gabc", "Release", "GNU 13.2.0");
    manifest.add_config("users", std::uint64_t{200});
    manifest.add_config("budget_mb", 2.5);
    manifest.add_config("csv", "out.csv");
    manifest.add_timing("wall_sec", 1.5);
    manifest.add_timing("rows_written", 21.0);

    std::ostringstream out;
    manifest.write_json(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"schema\": \"richnote-manifest-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"tool\": \"fig3_performance\""), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"git_describe\": \"v1.2.3-4-gabc\""), std::string::npos);
    EXPECT_NE(json.find("\"build_type\": \"Release\""), std::string::npos);
    EXPECT_NE(json.find("\"compiler\": \"GNU 13.2.0\""), std::string::npos);
    EXPECT_NE(json.find("\"users\": \"200\""), std::string::npos);
    EXPECT_NE(json.find("\"budget_mb\": \"2.5\""), std::string::npos);
    EXPECT_NE(json.find("\"csv\": \"out.csv\""), std::string::npos);
    EXPECT_NE(json.find("\"wall_sec\": 1.5"), std::string::npos);
}

TEST(run_manifest_suite, config_is_echoed_in_insertion_order) {
    run_manifest manifest("t");
    manifest.add_config("zeta", std::uint64_t{1});
    manifest.add_config("alpha", std::uint64_t{2});
    std::ostringstream out;
    manifest.write_json(out);
    // The manifest records what the run was told, in the order it was told —
    // no re-sorting (unlike the metrics registry).
    EXPECT_LT(out.str().find("zeta"), out.str().find("alpha"));
    ASSERT_EQ(manifest.config().size(), 2u);
    EXPECT_EQ(manifest.config()[0].first, "zeta");
}

TEST(run_manifest_suite, default_build_identity_comes_from_build_info) {
    run_manifest manifest("t");
    std::ostringstream out;
    manifest.write_json(out);
    EXPECT_NE(out.str().find(richnote::obs::build_info::git_describe),
              std::string::npos);
    EXPECT_NE(out.str().find(richnote::obs::build_info::compiler), std::string::npos);
}

TEST(run_manifest_suite, empty_sections_are_valid_json_objects) {
    run_manifest manifest("t");
    std::ostringstream out;
    manifest.write_json(out);
    EXPECT_NE(out.str().find("\"config\": {}"), std::string::npos);
    EXPECT_NE(out.str().find("\"timings\": {}"), std::string::npos);
}

TEST(run_manifest_suite, write_file_round_trips_and_rejects_bad_paths) {
    run_manifest manifest("t");
    manifest.set_seed(7);
    const std::string path = ::testing::TempDir() + "richnote_manifest_test.json";
    manifest.write_file(path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream loaded;
    loaded << in.rdbuf();
    std::ostringstream direct;
    manifest.write_json(direct);
    EXPECT_EQ(loaded.str(), direct.str());
    std::remove(path.c_str());

    EXPECT_THROW(manifest.write_file("/nonexistent-dir/nope/manifest.json"),
                 std::exception);
}

} // namespace

// Span exporter golden tests: fixed synthetic span sets must render to
// byte-exact Chrome trace-event JSON and collapsed flamegraph stacks —
// the exporters are pure functions of the span vector.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/span_export.hpp"

namespace {

using richnote::obs::profile_slot;
using richnote::obs::span_record;

span_record span(std::uint64_t start, std::uint64_t end, std::uint32_t lane,
                 profile_slot slot) {
    span_record s;
    s.start_ns = start;
    s.end_ns = end;
    s.lane = lane;
    s.slot = slot;
    return s;
}

TEST(span_export_suite, chrome_trace_rebases_and_orders_deterministically) {
    // Out-of-order input with a big clock offset; output rebases the
    // earliest span to ts=0 and sorts by (start, lane).
    const std::vector<span_record> spans = {
        span(1'000'003'000, 1'000'004'500, 1, profile_slot::mckp_solve),
        span(1'000'000'000, 1'000'010'000, 0, profile_slot::broker_round),
        span(1'000'002'000, 1'000'005'000, 0, profile_slot::scheduler_plan),
    };
    std::ostringstream out;
    richnote::obs::write_chrome_trace(spans, out);
    EXPECT_EQ(out.str(),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
              "{\"name\":\"broker_round\",\"cat\":\"richnote\",\"ph\":\"X\","
              "\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":10},\n"
              "{\"name\":\"scheduler_plan\",\"cat\":\"richnote\",\"ph\":\"X\","
              "\"pid\":1,\"tid\":0,\"ts\":2,\"dur\":3},\n"
              "{\"name\":\"mckp_solve\",\"cat\":\"richnote\",\"ph\":\"X\","
              "\"pid\":1,\"tid\":1,\"ts\":3,\"dur\":1.5}\n"
              "]}\n");
}

TEST(span_export_suite, chrome_trace_of_nothing_is_an_empty_document) {
    std::ostringstream out;
    richnote::obs::write_chrome_trace({}, out);
    EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(span_export_suite, collapsed_stacks_reconstruct_nesting_by_containment) {
    // Lane 0: a 10us broker_round containing a 3us scheduler_plan which
    // contains a 1us mckp_solve; then a disjoint second broker_round.
    // Lane 1: an independent forest_predict (must NOT nest under lane 0).
    const std::vector<span_record> spans = {
        span(0, 10'000, 0, profile_slot::broker_round),
        span(2'000, 5'000, 0, profile_slot::scheduler_plan),
        span(3'000, 4'000, 0, profile_slot::mckp_solve),
        span(20'000, 26'000, 0, profile_slot::broker_round),
        span(1'000, 9'000, 1, profile_slot::forest_predict),
    };
    std::ostringstream out;
    richnote::obs::write_collapsed_stacks(spans, out);
    // Self-times: outer broker_round 10000-3000=7000 plus the second one
    // 6000 => 13000; scheduler_plan 3000-1000=2000; mckp 1000.
    EXPECT_EQ(out.str(),
              "broker_round 13000\n"
              "broker_round;scheduler_plan 2000\n"
              "broker_round;scheduler_plan;mckp_solve 1000\n"
              "forest_predict 8000\n");
}

TEST(span_export_suite, collapsed_stacks_are_input_order_independent) {
    const std::vector<span_record> forward = {
        span(0, 8'000, 0, profile_slot::broker_round),
        span(1'000, 2'000, 0, profile_slot::mckp_solve),
        span(500, 7'000, 1, profile_slot::sim_tick),
    };
    std::vector<span_record> reversed(forward.rbegin(), forward.rend());
    std::ostringstream a;
    std::ostringstream b;
    richnote::obs::write_collapsed_stacks(forward, a);
    richnote::obs::write_collapsed_stacks(reversed, b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("broker_round;mckp_solve 1000"), std::string::npos);
}

} // namespace
